/**
 * @file
 * Interval-style out-of-order core model (the Sniper substitute; see
 * DESIGN.md).  The model consumes basic-block events, drives the MMU,
 * branch unit and cache hierarchy, performs the pseudo-FDIP lookahead
 * of paper section 4.1, and accounts cycles into Top-Down buckets.
 *
 * Timing approximations (all parameters below):
 *  - retire cost is instrs / dispatch width;
 *  - instruction fetch stalls expose hierarchy latency beyond a small
 *    fetch-queue slack; FDIP prefetches issued `lookahead` blocks
 *    ahead hide latency when the intervening branches are predictable;
 *  - load miss latency is partially hidden by the OOO window
 *    (loadExposedFraction) and overlapping misses share the window
 *    (overlapMlp); stores retire through the store buffer;
 *  - branch mispredicts cost a fixed penalty, BTB misses on taken
 *    branches a smaller redirect bubble.
 *
 * Event flow is batched (see BBEventSource in workloads/executor.hh):
 * the source fills a core-owned power-of-two ring tens of events at a
 * time -- one virtual call per batch -- and the outer loop walks the
 * ring with masked indices.  A lookahead cursor stamps fdipMispredict
 * exactly when an event enters the FDIP window, so predictor state is
 * sampled at the same instant as in the old event-at-a-time engine
 * and the simulated behavior is bit-identical.  Per-event accounting
 * is table-indexed where that is provably exact: the branch penalty
 * feeding the cycle count is a LUT indexed by (mispredict, redirect)
 * -- the no-penalty entry adds 0.0, which is bit-exact -- and the
 * mispred Top-Down bucket is reconstructed at end of run from
 * integer counters (integer-weighted sums reorder exactly).  The
 * fractional backend buckets stay in event order: reassociating
 * their sums would drift by ulps, visible in the byte-reproducible
 * BENCH files.
 */

#ifndef TRRIP_SIM_CORE_MODEL_HH
#define TRRIP_SIM_CORE_MODEL_HH

#include <array>
#include <memory>
#include <vector>

#include "analysis/costly_miss.hh"
#include "branch/predictors.hh"
#include "cache/hierarchy.hh"
#include "sim/topdown.hh"
#include "sw/mmu.hh"
#include "util/error.hh"
#include "workloads/executor.hh"

namespace trrip {

/**
 * @name Stub-attribution levers
 * Bits of CoreParams::stubMask.  Each lever replaces one engine layer
 * with a no-op so bench/throughput can time the difference and
 * attribute per-instruction cost to that layer (the ROADMAP budget
 * table).  Stubbed runs are NOT behavior-preserving -- they exist
 * only for wall-clock attribution and never feed BENCH files.  The
 * run loop is instantiated per mask, so the default (zero) hot path
 * carries no stub checks at all.
 */
/** @{ */
constexpr unsigned kStubNone = 0;
/** Skip every cache-hierarchy call (fetch/data/prefetch). */
constexpr unsigned kStubHier = 1;
/** Skip branch-unit resolution and the FDIP lookahead scan. */
constexpr unsigned kStubBranch = 2;
/** Skip MMU translation (paddr = vaddr, no temperature, no walks). */
constexpr unsigned kStubMmu = 4;
/**
 * Producer-only: events are produced normally but consumed by a
 * no-op core (no lookahead scan, no MMU/branch/hierarchy work, only
 * instruction counting).  Unlike the other levers, this run's own
 * ns/instr IS the executor layer's cost.
 */
constexpr unsigned kStubExec = 8;
/** @} */

/**
 * Simulation fidelity axis (ROADMAP lever (f); README "Exact vs fast
 * mode").  Exact is the byte-reproducible reference engine.  Fast is
 * the opt-in accuracy/speed trade: block-level fetch memoization with
 * generation-based invalidation -- an event whose every fetch line
 * the memo proved L1I/TLB-resident (and whose residency generations
 * have not advanced since) skips the instruction-side hierarchy/MMU
 * probes and replays the recorded zero-latency fetch outcome.
 * Everything else stays live on replay: branches resolve through the
 * real predictors, retire/backend accounting recomputes from the
 * event, and data accesses run the full exact path (proxy executors
 * re-randomize data addresses per execution, so memoizing them would
 * never hit).  The one exact-vs-fast divergence is that replayed
 * fetch hits skip the L1I replacement policy's onHit recency
 * updates, so victim choices (and everything downstream of them) may
 * drift once i-side eviction pressure exists; bench/fast_mode
 * quantifies the drift per Top-Down bucket.
 */
enum class SimMode : std::uint8_t
{
    /** Resolve from TRRIP_SIM_MODE at construction (the default). */
    Auto,
    Exact,
    Fast,
};

/**
 * The mode TRRIP_SIM_MODE resolves to: "fast" -> Fast, unset or
 * "exact" -> Exact, anything else panics.  Read once and cached.
 */
SimMode defaultSimMode();

/** Core model parameters (defaults = paper Table 1). */
struct CoreParams
{
    unsigned dispatchWidth = 6;
    unsigned robEntries = 128;
    Cycles mispredictPenalty = 8;
    Cycles btbRedirectPenalty = 3;

    bool fdipEnabled = true;
    unsigned fdipLookahead = 8;     //!< Blocks of run-ahead.

    Cycles fetchQueueSlack = 4;     //!< Fetch latency hidden for free.
    double loadExposedFraction = 0.3;
    double dependentExposedFraction = 0.55;
    double overlapMlp = 3.0;
    double storeExposedFraction = 0.04;
    Cycles tlbWalkPenalty = 3;

    /** Exposed stall that can mark a miss costly. */
    Cycles starvationThreshold = 28;
    /**
     * Decode starvation requires clustered misses: a second L2
     * instruction miss within this window of the previous one (a
     * lone miss drains the fetch/decode queues without starving).
     */
    double starvationBurstWindow = 150.0;

    /** Stub-attribution mask (kStub*); 0 for every real simulation. */
    unsigned stubMask = kStubNone;

    /**
     * Simulation fidelity (see SimMode).  Auto defers to the
     * TRRIP_SIM_MODE environment variable; tests that assert
     * hand-computed or golden-pinned numbers set Exact explicitly so
     * they hold under any environment.  Stub-attribution runs
     * (stubMask != 0) always use the exact engine regardless of mode:
     * the attribution table is defined as exact-engine cost.
     */
    SimMode mode = SimMode::Auto;
};

/** Synthetic backend stall components, copied from the workload. */
struct BackendParams
{
    double dependStallPerInstr = 0.0;
    double issueStallPerInstr = 0.0;
    double otherStallPerInstr = 0.0;
};

/**
 * Fast-mode memo instrumentation.  All zero in exact mode.  Not part
 * of the BENCH metric set (exp::defaultMetrics): BENCH files must stay
 * byte-identical between a fast run and an exact run on quiescent
 * configs, and the memo counters are exactly the fields that differ.
 */
struct FastSimStats
{
    std::uint64_t lookups = 0;     //!< Events probed against the memo.
    std::uint64_t hits = 0;        //!< Events replayed from the memo.
    std::uint64_t records = 0;     //!< Memo entries written.
    std::uint64_t ineligible = 0;  //!< Events that touched a miss path.
    /** Entries discarded because a cache-set/TLB-slot gen advanced. */
    std::uint64_t genInvalidations = 0;
    /** Entries discarded because the branch-unit gen advanced. */
    std::uint64_t branchInvalidations = 0;
    /** Entries overwritten by a different key hashing to the slot. */
    std::uint64_t conflictEvictions = 0;

    double
    hitRate() const
    {
        return lookups == 0 ? 0.0
                            : static_cast<double>(hits) /
                                  static_cast<double>(lookups);
    }
};

/** Everything a simulation run produces. */
struct SimResult
{
    InstCount instructions = 0;
    double cycles = 0.0;
    TopDown topdown;

    double l2InstMpki = 0.0;
    double l2DataMpki = 0.0;
    CacheStats l1i, l1d, l2, slc;
    PrefetchStats prefetch;
    BranchStats branch;
    TlbStats tlb;
    std::uint64_t l2HotEvictions = 0;
    /** Memo counters of the run (all zero in exact mode). */
    FastSimStats fast;

    double ipc() const
    { return cycles > 0.0 ? static_cast<double>(instructions) / cycles
                          : 0.0; }
    double cpi() const
    { return instructions > 0 ? cycles /
          static_cast<double>(instructions) : 0.0; }
};

/** The interval core. */
class CoreModel
{
  public:
    CoreModel(BBEventSource &events, CacheHierarchy &hierarchy,
              Mmu &mmu, BranchUnit &branch, const CoreParams &params,
              const BackendParams &backend);

    /** Optional costly-miss recorder (paper Fig. 7). */
    void setCostlyTracker(CostlyMissTracker *tracker)
    { costlyTracker_ = tracker; }

    /**
     * Optional cooperative cancellation (the watchdog's deadline
     * path).  Polled at event-batch refills -- every few dozen
     * events, so cancellation lands within microseconds without a
     * per-event branch -- and surfaces as a thrown
     * SimError(Timeout) unwinding out of run().
     */
    void setCancelToken(const CancelToken *cancel) { cancel_ = cancel; }

    /** Run for @p max_instructions and return the aggregated result. */
    SimResult run(InstCount max_instructions);

    /**
     * @name Incremental stepping (the multi-core round-robin driver)
     * run(n) == { step(n); finalize(); } bit for bit: every piece of
     * loop state lives in members, so cutting the run into quanta
     * changes nothing about this core's own trajectory -- only the
     * interleaving of its shared-resource (SLC/DRAM) traffic with
     * other cores', which is exactly what the driver schedules.
     */
    /** @{ */

    /** Advance until at least @p target_instructions have retired. */
    void step(InstCount target_instructions);

    /** Instructions retired so far. */
    InstCount retired() const { return instructions_; }

    /** Aggregate the result once the final step() has run. */
    SimResult finalize();

    /** @} */

  private:
    /**
     * The batched outer loop, instantiated per (stub mask, fast)
     * combination; Fast is only ever instantiated with kStubNone (the
     * attribution stubs are defined as exact-engine measurements).
     */
    template <unsigned Stub, bool Fast>
    void stepLoop(InstCount target_instructions);

    /** Top the ring up to full when fewer than a window is ahead. */
    template <unsigned Stub>
    void refill();

    template <unsigned Stub>
    void fdipPrefetch(const BBEvent &tail);

    /**
     * Simulate one event.  With Record (fast mode's miss path), the
     * body additionally captures the event's fetch-side residency
     * touch set into the rec* scratch so fastEvent() can memoize it;
     * a Record pass is otherwise the exact body -- identical probes,
     * stats and timing.
     */
    template <unsigned Stub, bool Record = false>
    void processEvent(const BBEvent &ev);

    /**
     * One data access, exactly as the event body performs it.  Shared
     * verbatim between processEvent() and replayEvent(): the fast
     * engine never memoizes data accesses, it replays the fetch side
     * and runs this live.
     */
    template <unsigned Stub>
    void processData(const DataAccessEvent &d);

    /** @name Fast-mode memo machinery (see the SimMode comment) */
    /** @{ */

    /**
     * Component tags packed into MemoTouch::comp (top 4 bits).  Only
     * the fetch side is memoized, so entries carry kMemoL1I and
     * kMemoTlb touches; kMemoL1D stays reserved (data accesses run
     * live on replay -- see memoKey()).
     */
    static constexpr std::uint32_t kMemoL1I = 0;
    static constexpr std::uint32_t kMemoL1D = 1;
    static constexpr std::uint32_t kMemoTlb = 2;

    /**
     * One residency dependency: a (component, set/slot) generation.
     * No default member initializers: the payload table is allocated
     * uninitialized (see the memo_ comment), and an NSDMI would drag
     * a 2 MB zero-fill back into every fast-mode CoreModel.
     */
    struct MemoTouch
    {
        std::uint32_t comp;  //!< (tag << 28) | set-or-slot index.
        std::uint32_t gen;   //!< Generation snapshotted at record.
    };

    /**
     * Touch capacity per entry: every fetch line contributes an L1I
     * set + a TLB slot, deduplicated (consecutive lines share a
     * page, so the TLB slots collapse); an event spanning more
     * distinct dependencies than this is simply ineligible.  Basic
     * blocks span a handful of lines at most, and the cap is chosen
     * so MemoEntry fits one host cache line -- a hit reads exactly
     * one payload line on top of the tag probe.
     */
    static constexpr std::uint32_t kMemoTouchCap = 6;

    struct alignas(64) MemoEntry
    {
        std::uint64_t branchGen;  //!< BranchUnit::generation().
        Temperature fetchTemp;
        std::uint8_t nTouch;
        std::array<MemoTouch, kMemoTouchCap> touch;
    };
    static_assert(sizeof(MemoEntry) == 64,
                  "one payload cache line per memo hit");

    /** Content hash of @p ev (plus the skip-first-line bit); never 0. */
    std::uint64_t memoKey(const BBEvent &ev, bool skip_first) const;

    /** Fast-mode per-event step: replay on a valid hit, else record. */
    void fastEvent(const BBEvent &ev);

    /** Replay @p ev against memo entry @p e (all accesses proved hits). */
    void replayEvent(const BBEvent &ev, const MemoEntry &e,
                     bool skip_first);

    /** Record-path touch capture (dedupes; clears recEligible_ on
     *  overflow). */
    void
    recTouch(std::uint32_t tag, std::uint32_t index, std::uint32_t gen)
    {
        const std::uint32_t comp = (tag << 28) | index;
        for (std::uint32_t i = 0; i < recNTouch_; ++i) {
            if (recTouch_[i].comp == comp)
                return;
        }
        if (recNTouch_ >= kMemoTouchCap) {
            recEligible_ = false;
            return;
        }
        recTouch_[recNTouch_++] = MemoTouch{comp, gen};
    }

    /** @} */

    /** Exact instrs / dispatchWidth, memoized for small sizes. */
    double
    retireCycles(std::uint32_t instrs) const
    {
        if (instrs < retireMemo_.size())
            return retireMemo_[instrs];
        return static_cast<double>(instrs) / params_.dispatchWidth;
    }

    BBEventSource &events_;
    CacheHierarchy &hier_;
    Mmu &mmu_;
    BranchUnit &branch_;
    CoreParams params_;
    BackendParams backend_;

    /**
     * Event ring: power-of-two capacity, at least one whole produce
     * batch beyond the FDIP window.  head_/scanned_/produced_ are
     * absolute event counts (index = count & mask_):
     *   [head_, scanned_)   events inside the FDIP lookahead window
     *                       (fdipMispredict stamped),
     *   [scanned_, produced_) produced, not yet visible to FDIP.
     * BBEvent is several hundred bytes, so the slots are reused for
     * the whole run; the source overwrites every live field.
     */
    std::vector<BBEvent> ring_;
    std::uint32_t mask_ = 0;
    std::uint64_t head_ = 0;
    std::uint64_t scanned_ = 0;
    std::uint64_t produced_ = 0;
    /** FDIP window size in events (fdipLookahead + 1). */
    std::uint32_t window_ = 0;
    unsigned windowMispredicts_ = 0;
    /** Lookahead scan enabled (FDIP on and window deep enough). */
    bool fdipScan_ = false;

    /** Cached L2 line mask/size (constants for the whole run). */
    Addr lineMask_ = ~static_cast<Addr>(63);
    std::uint32_t lineBytes_ = 64;

    /** Precomputed backend stall sum (same double every event). */
    double backendStallPerInstr_ = 0.0;
    /** instrs / dispatchWidth for instrs in [0, 256). */
    std::array<double, 256> retireMemo_{};
    /**
     * Branch penalty by (mispredicted | redirect << 1): {0, P, R, P}.
     * Indexed per resolved branch; the no-penalty entry adds 0.0,
     * which leaves the cycle count bit-identical to not adding.
     */
    std::array<double, 4> branchPenalty_{};

    double now_ = 0.0;
    InstCount instructions_ = 0;
    TopDown td_;
    Addr lastFetchLine_ = ~0ull;
    double missShadowEnd_ = 0.0;

    /**
     * @name Integer event counters behind the hoisted mispred bucket
     * The mispredict / redirect Top-Down contributions are integer
     * multiples of their fixed penalties, so the bucket is
     * reconstructed exactly at end of run as count * penalty
     * (integer-valued doubles: no rounding, identical bits to the
     * old per-event accumulation).  The fractional backend buckets
     * cannot hoist this way and stay in event order.
     */
    /** @{ */
    std::uint64_t mispredEvents_ = 0;
    std::uint64_t redirectEvents_ = 0;
    /** @} */

    /** Alternator implementing Emissary's 1/2 marking probability. */
    std::uint64_t starvationEvents_ = 0;
    double lastInstL2Miss_ = -1e18;
    CostlyMissTracker *costlyTracker_ = nullptr;
    const CancelToken *cancel_ = nullptr;

    /**
     * @name Fast-mode state
     * Owned per CoreModel instance, so a retried cell or a reused
     * worker can never replay another attempt's memo (bench/chaos
     * verifies Retry convergence in fast mode).  Allocated only when
     * the resolved mode is Fast.
     */
    /** @{ */
    SimMode mode_ = SimMode::Exact;   //!< Resolved (never Auto).
    /**
     * Direct-mapped memo table, split so the every-event probe stays
     * cheap: memoKeys_ holds just the content hashes (0 = empty; 8
     * bytes per slot, small enough to stay cache-resident) and is the
     * only array touched on a miss, while the ~10x larger payload
     * table memo_ is read on a tag match and written on a record.
     * The payload is allocated uninitialized -- a slot is only read
     * after its key matched, and a key only exists once a record
     * wrote the slot -- so construction faults no payload pages and
     * unused slots never cost host memory.
     */
    std::vector<std::uint64_t> memoKeys_;
    std::unique_ptr<MemoEntry[]> memo_;
    /**
     * First-sighting filter: one bit per key hash.  A key is only
     * recorded on its second sighting, so cold code -- blocks
     * executed once and never seen again -- costs a bit flip instead
     * of an entry write.
     */
    std::vector<std::uint64_t> seen_;
    FastSimStats fastStats_;
    /** Record-pass scratch, reset by fastEvent() per event. */
    bool recEligible_ = false;
    std::uint32_t recNTouch_ = 0;
    Temperature recFetchTemp_ = Temperature::None;
    std::array<MemoTouch, kMemoTouchCap> recTouch_{};
    /** @} */

    static constexpr std::uint32_t kMemoEntries = 1u << 15;
    static constexpr std::uint32_t kSeenBits = 1u << 17;
};

} // namespace trrip

#endif // TRRIP_SIM_CORE_MODEL_HH
