/**
 * @file
 * Interval-style out-of-order core model (the Sniper substitute; see
 * DESIGN.md).  The model consumes basic-block events, drives the MMU,
 * branch unit and cache hierarchy, performs the pseudo-FDIP lookahead
 * of paper section 4.1, and accounts cycles into Top-Down buckets.
 *
 * Timing approximations (all parameters below):
 *  - retire cost is instrs / dispatch width;
 *  - instruction fetch stalls expose hierarchy latency beyond a small
 *    fetch-queue slack; FDIP prefetches issued `lookahead` blocks
 *    ahead hide latency when the intervening branches are predictable;
 *  - load miss latency is partially hidden by the OOO window
 *    (loadExposedFraction) and overlapping misses share the window
 *    (overlapMlp); stores retire through the store buffer;
 *  - branch mispredicts cost a fixed penalty, BTB misses on taken
 *    branches a smaller redirect bubble.
 */

#ifndef TRRIP_SIM_CORE_MODEL_HH
#define TRRIP_SIM_CORE_MODEL_HH

#include <array>
#include <vector>

#include "analysis/costly_miss.hh"
#include "branch/predictors.hh"
#include "cache/hierarchy.hh"
#include "sim/topdown.hh"
#include "sw/mmu.hh"
#include "workloads/executor.hh"

namespace trrip {

/** Core model parameters (defaults = paper Table 1). */
struct CoreParams
{
    unsigned dispatchWidth = 6;
    unsigned robEntries = 128;
    Cycles mispredictPenalty = 8;
    Cycles btbRedirectPenalty = 3;

    bool fdipEnabled = true;
    unsigned fdipLookahead = 8;     //!< Blocks of run-ahead.

    Cycles fetchQueueSlack = 4;     //!< Fetch latency hidden for free.
    double loadExposedFraction = 0.3;
    double dependentExposedFraction = 0.55;
    double overlapMlp = 3.0;
    double storeExposedFraction = 0.04;
    Cycles tlbWalkPenalty = 3;

    /** Exposed stall that can mark a miss costly. */
    Cycles starvationThreshold = 28;
    /**
     * Decode starvation requires clustered misses: a second L2
     * instruction miss within this window of the previous one (a
     * lone miss drains the fetch/decode queues without starving).
     */
    double starvationBurstWindow = 150.0;
};

/** Synthetic backend stall components, copied from the workload. */
struct BackendParams
{
    double dependStallPerInstr = 0.0;
    double issueStallPerInstr = 0.0;
    double otherStallPerInstr = 0.0;
};

/** Everything a simulation run produces. */
struct SimResult
{
    InstCount instructions = 0;
    double cycles = 0.0;
    TopDown topdown;

    double l2InstMpki = 0.0;
    double l2DataMpki = 0.0;
    CacheStats l1i, l1d, l2, slc;
    PrefetchStats prefetch;
    BranchStats branch;
    TlbStats tlb;
    std::uint64_t l2HotEvictions = 0;

    double ipc() const
    { return cycles > 0.0 ? static_cast<double>(instructions) / cycles
                          : 0.0; }
    double cpi() const
    { return instructions > 0 ? cycles /
          static_cast<double>(instructions) : 0.0; }
};

/** The interval core. */
class CoreModel
{
  public:
    CoreModel(Executor &executor, CacheHierarchy &hierarchy, Mmu &mmu,
              BranchUnit &branch, const CoreParams &params,
              const BackendParams &backend);

    /** Optional costly-miss recorder (paper Fig. 7). */
    void setCostlyTracker(CostlyMissTracker *tracker)
    { costlyTracker_ = tracker; }

    /** Run for @p max_instructions and return the aggregated result. */
    SimResult run(InstCount max_instructions);

  private:
    void refillWindow();
    void fdipPrefetch();
    void processEvent(const BBEvent &ev);

    /** Exact instrs / dispatchWidth, memoized for small sizes. */
    double
    retireCycles(std::uint32_t instrs) const
    {
        if (instrs < retireMemo_.size())
            return retireMemo_[instrs];
        return static_cast<double>(instrs) / params_.dispatchWidth;
    }

    Executor &executor_;
    CacheHierarchy &hier_;
    Mmu &mmu_;
    BranchUnit &branch_;
    CoreParams params_;
    BackendParams backend_;

    /**
     * FDIP lookahead window as a fixed-capacity ring buffer.  BBEvent
     * is several hundred bytes, so a std::deque would allocate on
     * every push; the ring reuses fdipLookahead + 1 slots for the
     * whole run (Executor::next overwrites every live field).
     */
    std::vector<BBEvent> window_;
    std::size_t winHead_ = 0;
    std::size_t winCount_ = 0;
    unsigned windowMispredicts_ = 0;

    std::size_t
    winIndex(std::size_t offset) const
    {
        std::size_t i = winHead_ + offset;
        if (i >= window_.size())
            i -= window_.size();
        return i;
    }

    /** Cached L2 line mask/size (constants for the whole run). */
    Addr lineMask_ = ~static_cast<Addr>(63);
    std::uint32_t lineBytes_ = 64;

    /** Precomputed backend stall sum (same double every event). */
    double backendStallPerInstr_ = 0.0;
    /** instrs / dispatchWidth for instrs in [0, 256). */
    std::array<double, 256> retireMemo_{};

    double now_ = 0.0;
    InstCount instructions_ = 0;
    TopDown td_;
    Addr lastFetchLine_ = ~0ull;
    double missShadowEnd_ = 0.0;

    /** Alternator implementing Emissary's 1/2 marking probability. */
    std::uint64_t starvationEvents_ = 0;
    double lastInstL2Miss_ = -1e18;
    CostlyMissTracker *costlyTracker_ = nullptr;
};

} // namespace trrip

#endif // TRRIP_SIM_CORE_MODEL_HH
