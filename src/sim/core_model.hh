/**
 * @file
 * Interval-style out-of-order core model (the Sniper substitute; see
 * DESIGN.md).  The model consumes basic-block events, drives the MMU,
 * branch unit and cache hierarchy, performs the pseudo-FDIP lookahead
 * of paper section 4.1, and accounts cycles into Top-Down buckets.
 *
 * Timing approximations (all parameters below):
 *  - retire cost is instrs / dispatch width;
 *  - instruction fetch stalls expose hierarchy latency beyond a small
 *    fetch-queue slack; FDIP prefetches issued `lookahead` blocks
 *    ahead hide latency when the intervening branches are predictable;
 *  - load miss latency is partially hidden by the OOO window
 *    (loadExposedFraction) and overlapping misses share the window
 *    (overlapMlp); stores retire through the store buffer;
 *  - branch mispredicts cost a fixed penalty, BTB misses on taken
 *    branches a smaller redirect bubble.
 *
 * Event flow is batched (see BBEventSource in workloads/executor.hh):
 * the source fills a core-owned power-of-two ring tens of events at a
 * time -- one virtual call per batch -- and the outer loop walks the
 * ring with masked indices.  A lookahead cursor stamps fdipMispredict
 * exactly when an event enters the FDIP window, so predictor state is
 * sampled at the same instant as in the old event-at-a-time engine
 * and the simulated behavior is bit-identical.  Per-event accounting
 * is table-indexed where that is provably exact: the branch penalty
 * feeding the cycle count is a LUT indexed by (mispredict, redirect)
 * -- the no-penalty entry adds 0.0, which is bit-exact -- and the
 * mispred Top-Down bucket is reconstructed at end of run from
 * integer counters (integer-weighted sums reorder exactly).  The
 * fractional backend buckets stay in event order: reassociating
 * their sums would drift by ulps, visible in the byte-reproducible
 * BENCH files.
 */

#ifndef TRRIP_SIM_CORE_MODEL_HH
#define TRRIP_SIM_CORE_MODEL_HH

#include <array>
#include <vector>

#include "analysis/costly_miss.hh"
#include "branch/predictors.hh"
#include "cache/hierarchy.hh"
#include "sim/topdown.hh"
#include "sw/mmu.hh"
#include "util/error.hh"
#include "workloads/executor.hh"

namespace trrip {

/**
 * @name Stub-attribution levers
 * Bits of CoreParams::stubMask.  Each lever replaces one engine layer
 * with a no-op so bench/throughput can time the difference and
 * attribute per-instruction cost to that layer (the ROADMAP budget
 * table).  Stubbed runs are NOT behavior-preserving -- they exist
 * only for wall-clock attribution and never feed BENCH files.  The
 * run loop is instantiated per mask, so the default (zero) hot path
 * carries no stub checks at all.
 */
/** @{ */
constexpr unsigned kStubNone = 0;
/** Skip every cache-hierarchy call (fetch/data/prefetch). */
constexpr unsigned kStubHier = 1;
/** Skip branch-unit resolution and the FDIP lookahead scan. */
constexpr unsigned kStubBranch = 2;
/** Skip MMU translation (paddr = vaddr, no temperature, no walks). */
constexpr unsigned kStubMmu = 4;
/**
 * Producer-only: events are produced normally but consumed by a
 * no-op core (no lookahead scan, no MMU/branch/hierarchy work, only
 * instruction counting).  Unlike the other levers, this run's own
 * ns/instr IS the executor layer's cost.
 */
constexpr unsigned kStubExec = 8;
/** @} */

/** Core model parameters (defaults = paper Table 1). */
struct CoreParams
{
    unsigned dispatchWidth = 6;
    unsigned robEntries = 128;
    Cycles mispredictPenalty = 8;
    Cycles btbRedirectPenalty = 3;

    bool fdipEnabled = true;
    unsigned fdipLookahead = 8;     //!< Blocks of run-ahead.

    Cycles fetchQueueSlack = 4;     //!< Fetch latency hidden for free.
    double loadExposedFraction = 0.3;
    double dependentExposedFraction = 0.55;
    double overlapMlp = 3.0;
    double storeExposedFraction = 0.04;
    Cycles tlbWalkPenalty = 3;

    /** Exposed stall that can mark a miss costly. */
    Cycles starvationThreshold = 28;
    /**
     * Decode starvation requires clustered misses: a second L2
     * instruction miss within this window of the previous one (a
     * lone miss drains the fetch/decode queues without starving).
     */
    double starvationBurstWindow = 150.0;

    /** Stub-attribution mask (kStub*); 0 for every real simulation. */
    unsigned stubMask = kStubNone;
};

/** Synthetic backend stall components, copied from the workload. */
struct BackendParams
{
    double dependStallPerInstr = 0.0;
    double issueStallPerInstr = 0.0;
    double otherStallPerInstr = 0.0;
};

/** Everything a simulation run produces. */
struct SimResult
{
    InstCount instructions = 0;
    double cycles = 0.0;
    TopDown topdown;

    double l2InstMpki = 0.0;
    double l2DataMpki = 0.0;
    CacheStats l1i, l1d, l2, slc;
    PrefetchStats prefetch;
    BranchStats branch;
    TlbStats tlb;
    std::uint64_t l2HotEvictions = 0;

    double ipc() const
    { return cycles > 0.0 ? static_cast<double>(instructions) / cycles
                          : 0.0; }
    double cpi() const
    { return instructions > 0 ? cycles /
          static_cast<double>(instructions) : 0.0; }
};

/** The interval core. */
class CoreModel
{
  public:
    CoreModel(BBEventSource &events, CacheHierarchy &hierarchy,
              Mmu &mmu, BranchUnit &branch, const CoreParams &params,
              const BackendParams &backend);

    /** Optional costly-miss recorder (paper Fig. 7). */
    void setCostlyTracker(CostlyMissTracker *tracker)
    { costlyTracker_ = tracker; }

    /**
     * Optional cooperative cancellation (the watchdog's deadline
     * path).  Polled at event-batch refills -- every few dozen
     * events, so cancellation lands within microseconds without a
     * per-event branch -- and surfaces as a thrown
     * SimError(Timeout) unwinding out of run().
     */
    void setCancelToken(const CancelToken *cancel) { cancel_ = cancel; }

    /** Run for @p max_instructions and return the aggregated result. */
    SimResult run(InstCount max_instructions);

  private:
    /** The batched outer loop, instantiated per stub mask. */
    template <unsigned Stub>
    SimResult runLoop(InstCount max_instructions);

    /** Top the ring up to full when fewer than a window is ahead. */
    template <unsigned Stub>
    void refill();

    template <unsigned Stub>
    void fdipPrefetch(const BBEvent &tail);

    template <unsigned Stub>
    void processEvent(const BBEvent &ev);

    /** Exact instrs / dispatchWidth, memoized for small sizes. */
    double
    retireCycles(std::uint32_t instrs) const
    {
        if (instrs < retireMemo_.size())
            return retireMemo_[instrs];
        return static_cast<double>(instrs) / params_.dispatchWidth;
    }

    BBEventSource &events_;
    CacheHierarchy &hier_;
    Mmu &mmu_;
    BranchUnit &branch_;
    CoreParams params_;
    BackendParams backend_;

    /**
     * Event ring: power-of-two capacity, at least one whole produce
     * batch beyond the FDIP window.  head_/scanned_/produced_ are
     * absolute event counts (index = count & mask_):
     *   [head_, scanned_)   events inside the FDIP lookahead window
     *                       (fdipMispredict stamped),
     *   [scanned_, produced_) produced, not yet visible to FDIP.
     * BBEvent is several hundred bytes, so the slots are reused for
     * the whole run; the source overwrites every live field.
     */
    std::vector<BBEvent> ring_;
    std::uint32_t mask_ = 0;
    std::uint64_t head_ = 0;
    std::uint64_t scanned_ = 0;
    std::uint64_t produced_ = 0;
    /** FDIP window size in events (fdipLookahead + 1). */
    std::uint32_t window_ = 0;
    unsigned windowMispredicts_ = 0;
    /** Lookahead scan enabled (FDIP on and window deep enough). */
    bool fdipScan_ = false;

    /** Cached L2 line mask/size (constants for the whole run). */
    Addr lineMask_ = ~static_cast<Addr>(63);
    std::uint32_t lineBytes_ = 64;

    /** Precomputed backend stall sum (same double every event). */
    double backendStallPerInstr_ = 0.0;
    /** instrs / dispatchWidth for instrs in [0, 256). */
    std::array<double, 256> retireMemo_{};
    /**
     * Branch penalty by (mispredicted | redirect << 1): {0, P, R, P}.
     * Indexed per resolved branch; the no-penalty entry adds 0.0,
     * which leaves the cycle count bit-identical to not adding.
     */
    std::array<double, 4> branchPenalty_{};

    double now_ = 0.0;
    InstCount instructions_ = 0;
    TopDown td_;
    Addr lastFetchLine_ = ~0ull;
    double missShadowEnd_ = 0.0;

    /**
     * @name Integer event counters behind the hoisted mispred bucket
     * The mispredict / redirect Top-Down contributions are integer
     * multiples of their fixed penalties, so the bucket is
     * reconstructed exactly at end of run as count * penalty
     * (integer-valued doubles: no rounding, identical bits to the
     * old per-event accumulation).  The fractional backend buckets
     * cannot hoist this way and stay in event order.
     */
    /** @{ */
    std::uint64_t mispredEvents_ = 0;
    std::uint64_t redirectEvents_ = 0;
    /** @} */

    /** Alternator implementing Emissary's 1/2 marking probability. */
    std::uint64_t starvationEvents_ = 0;
    double lastInstL2Miss_ = -1e18;
    CostlyMissTracker *costlyTracker_ = nullptr;
    const CancelToken *cancel_ = nullptr;
};

} // namespace trrip

#endif // TRRIP_SIM_CORE_MODEL_HH
