#include "sim/golden.hh"

#include <cstring>
#include <sstream>

namespace trrip {

namespace {

/** Fold one 64-bit value into an FNV-1a hash, byte by byte. */
std::uint64_t
fnv1a(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Hash + log one named counter. */
void
fold(std::uint64_t &h, std::ostringstream &dump, const char *name,
     std::uint64_t v)
{
    h = fnv1a(h, v);
    dump << "  " << name << " = " << v << "\n";
}

void
foldCache(std::uint64_t &h, std::ostringstream &dump, const char *level,
          const CacheStats &s)
{
    const auto tag = [&](const char *field) {
        return std::string(level) + "." + field;
    };
    fold(h, dump, tag("demandAccesses").c_str(), s.demandAccesses);
    fold(h, dump, tag("demandMisses").c_str(), s.demandMisses);
    fold(h, dump, tag("instDemandAccesses").c_str(),
         s.instDemandAccesses);
    fold(h, dump, tag("instDemandMisses").c_str(), s.instDemandMisses);
    fold(h, dump, tag("dataDemandAccesses").c_str(),
         s.dataDemandAccesses);
    fold(h, dump, tag("dataDemandMisses").c_str(), s.dataDemandMisses);
    fold(h, dump, tag("prefetchFills").c_str(), s.prefetchFills);
    fold(h, dump, tag("fills").c_str(), s.fills);
    fold(h, dump, tag("evictions").c_str(), s.evictions);
    fold(h, dump, tag("writebacks").c_str(), s.writebacks);
    fold(h, dump, tag("invalidations").c_str(), s.invalidations);
    fold(h, dump, tag("instEvictions").c_str(), s.instEvictions);
    fold(h, dump, tag("dataEvictions").c_str(), s.dataEvictions);
    for (std::size_t t = 0; t < s.evictionsByTemp.size(); ++t) {
        fold(h, dump,
             (tag("evictionsByTemp.") + std::to_string(t)).c_str(),
             s.evictionsByTemp[t]);
    }
}

} // namespace

std::uint64_t
goldenFingerprint(const SimResult &r, std::string *dump_out)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    std::ostringstream dump;
    fold(h, dump, "instructions", r.instructions);
    std::uint64_t cycle_bits = 0;
    static_assert(sizeof(cycle_bits) == sizeof(r.cycles));
    std::memcpy(&cycle_bits, &r.cycles, sizeof(cycle_bits));
    fold(h, dump, "cycles(bits)", cycle_bits);
    foldCache(h, dump, "l1i", r.l1i);
    foldCache(h, dump, "l1d", r.l1d);
    foldCache(h, dump, "l2", r.l2);
    foldCache(h, dump, "slc", r.slc);
    fold(h, dump, "prefetch.issued", r.prefetch.issued);
    fold(h, dump, "prefetch.covered", r.prefetch.covered);
    fold(h, dump, "prefetch.late", r.prefetch.late);
    fold(h, dump, "tlb.accesses", r.tlb.accesses);
    fold(h, dump, "tlb.misses", r.tlb.misses);
    fold(h, dump, "branch.branches", r.branch.branches);
    fold(h, dump, "branch.mispredicts", r.branch.mispredicts);
    fold(h, dump, "branch.btbMisses", r.branch.btbMisses);
    if (dump_out)
        *dump_out = dump.str();
    return h;
}

SimOptions
GoldenCase::options() const
{
    SimOptions opts;
    opts.maxInstructions = kGoldenBudget;
    opts.pgo = pgo;
    if (percentileHot > 0)
        opts.classifier.percentileHot = percentileHot;
    if (l2SizeKb > 0)
        opts.hier.l2.sizeBytes = l2SizeKb * 1024;
    if (l2Assoc > 0)
        opts.hier.l2.assoc = l2Assoc;
    if (fdipLookahead > 0)
        opts.core.fdipLookahead = fdipLookahead;
    return opts;
}

const std::vector<GoldenCase> &
goldenCases()
{
    /**
     * Pinned fingerprints, collected from the pre-optimization engine
     * (PR 3 baseline; the fig8/fig9 configuration rows were generated
     * on the pre-batching PR 4 engine).  Regenerate only for
     * intentional behavior changes: run tests/test_golden with
     * TRRIP_PRINT_GOLDEN=1 and copy the printed table.
     */
    static const std::vector<GoldenCase> cases = {
        {"python", "SRRIP", true, 0, 0, 0, 0, 0x354f6bb93937f302ull},
        {"python", "TRRIP-2", true, 0, 0, 0, 0, 0x9ff8d0f96e931894ull},
        {"clang", "LRU", true, 0, 0, 0, 0, 0x5de744e9e9e7e65bull},
        {"clang", "TRRIP-1", true, 0, 0, 0, 0, 0x237595874b157a43ull},
        {"sqlite", "SHiP", true, 0, 0, 0, 0, 0xa40ffba600a4f5e6ull},
        {"gcc", "DRRIP", false, 0, 0, 0, 0, 0x7b354e706eb46d74ull},
        {"omnetpp", "BRRIP", true, 0, 0, 0, 0, 0xd25c0f74ab141037ull},
        {"abseil", "CLIP", true, 0, 0, 0, 0, 0x4f83720389470805ull},
        {"deepsjeng", "Emissary", true, 0, 0, 0, 0,
         0xda094574784b19edull},
        {"rapidjson", "Random", false, 0, 0, 0, 0,
         0x4c50f5d1cf3b06daull},
        {"bullet", "SRRIP(bits=3)", true, 0, 0, 0, 0,
         0x57837c9ada14be9cull},
        // fig8 hot-threshold configurations (Percentile_hot extremes).
        {"gcc", "TRRIP-1", true, 0.10, 0, 0, 0,
         0x3c2c771688db8c19ull},
        {"sqlite", "TRRIP-2", true, 0.9999, 0, 0, 16,
         0xc5d2ceaa30d6ace4ull},
        // fig9 cache-sensitivity configurations (L2 size/assoc).
        {"omnetpp", "CLIP", true, 0, 256, 0, 0,
         0x55db4f347df84ea5ull},
        {"clang", "Emissary", true, 0, 0, 16, 0,
         0x026c744574ba810dull},
        {"python", "DRRIP", true, 0, 512, 0, 2,
         0xc960623690da29ecull},
    };
    return cases;
}

SimOptions
TraceGoldenCase::options() const
{
    SimOptions opts;
    opts.maxInstructions = kGoldenBudget;
    opts.pgo = pgo;
    return opts;
}

const std::vector<TraceGoldenCase> &
traceGoldenCases()
{
    /**
     * Pinned trace-replay fingerprints over the deterministic
     * mini-trace pack.  Regenerate like the table above: run
     * tests/test_golden with TRRIP_PRINT_GOLDEN=1 and copy the
     * printed rows.
     */
    static const std::vector<TraceGoldenCase> cases = {
        {"dispatch", "TRRIP-2", true, 0x9df1d2177afbb975ull},
        {"dispatch", "LRU", false, 0x01c4500f86e35d71ull},
        {"streaming", "SRRIP", true, 0x0114e4e0128b7128ull},
    };
    return cases;
}

SimOptions
MultiCoreGoldenCase::options() const
{
    SimOptions opts;
    opts.maxInstructions = kGoldenBudget;
    opts.pgo = pgo;
    return opts;
}

const std::vector<MultiCoreGoldenCase> &
multiCoreGoldenCases()
{
    /**
     * Pinned multi-core fingerprints: mixed temperature profiles (a
     * code-hot compiler next to a flatter interpreter), a 4-core
     * bundle stressing the owner-mask width, and one bundle mixing a
     * proxy core with a trace-replay core.  Regenerate like the
     * tables above: run tests/test_multicore with
     * TRRIP_PRINT_GOLDEN=1 and copy the printed rows.
     */
    static const std::vector<MultiCoreGoldenCase> cases = {
        {"python+gcc", "TRRIP-2", true, 0x13d640f0529fb8dbull},
        {"clang+sqlite", "SRRIP", true, 0xd2be7f307f4d176full},
        {"python+clang+gcc+sqlite", "TRRIP-2", true,
         0x2c29f26e846c42c0ull},
        {"gcc+@dispatch", "LRU", true, 0xcef31565d65f2648ull},
        {"omnetpp+rapidjson+deepsjeng+abseil", "SHiP", true,
         0xdfb914ea0ff55f05ull},
    };
    return cases;
}

} // namespace trrip
