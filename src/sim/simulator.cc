#include "sim/simulator.hh"

#include <cstdlib>

#include "util/logging.hh"

namespace trrip {

InstCount
defaultInstrBudget()
{
    if (const char *env = std::getenv("TRRIP_INSTR_MILLIONS")) {
        const double millions = std::atof(env);
        if (millions > 0.0)
            return static_cast<InstCount>(millions * 1e6);
    }
    return 6'000'000;
}

Profile
collectProfile(const SyntheticWorkload &workload,
               InstCount instructions)
{
    // Instrumented binaries are the pre-PGO layout (Fig. 4, ELF1).
    LayoutOptions layout_opts;
    const ElfImage image =
        layoutProgram(workload.program, nullptr, nullptr, layout_opts);

    ExecOptions exec_opts;
    exec_opts.seed = workload.params.trainSeed;
    exec_opts.handlerZipfSkew = workload.params.trainZipfSkew;
    Executor exec(workload, image, exec_opts);

    // Batched consumption (BBEventSource contract): events beyond the
    // budget boundary are produced and discarded, which is free --
    // the executor is a pure generator and this instance dies here.
    Profile profile(workload.program.numBlocks());
    constexpr std::uint32_t kBatch = 64;
    std::vector<BBEvent> ring(kBatch);
    InstCount done = 0;
    while (done < instructions) {
        exec.produce(ring.data(), kBatch - 1, 0, kBatch);
        for (std::uint32_t i = 0; i < kBatch && done < instructions;
             ++i) {
            profile.record(ring[i].bb);
            done += ring[i].instrs;
        }
    }
    return profile;
}

InstCount
resolveBudget(const SimOptions &options)
{
    return options.maxInstructions > 0 ? options.maxInstructions
                                       : defaultInstrBudget();
}

InstCount
resolveProfileBudget(const SimOptions &options)
{
    // PGO profiles need comparable coverage to the evaluation run or
    // the tail of the count distribution degenerates (every executed
    // block looks equally rare); default to the evaluation budget.
    return options.profileInstructions > 0
               ? options.profileInstructions
               : resolveBudget(options);
}

WorkloadRuntime
prepareWorkload(const SyntheticWorkload &workload,
                const SimOptions &options)
{
    WorkloadRuntime rt;
    RunArtifacts &art = rt.art;

    const InstCount profile_budget = resolveProfileBudget(options);

    // (2)-(3) Instrumented run producing the profile.  A precomputed
    // profile is shared by reference, not copied: a policy sweep keeps
    // one immutable Profile alive across all of its runs.
    if (options.precomputedProfile)
        art.profile = options.precomputedProfile;
    else
        art.profile = std::make_shared<Profile>(
            collectProfile(workload, profile_budget));

    // (4)-(5) Re-optimization: classify temperature, lay out ELF2.
    LayoutOptions layout_opts = options.layout;
    layout_opts.pageSize = options.pageSize;
    layout_opts.extraColdTextBytes = workload.params.extraColdTextBytes;
    layout_opts.extraBinaryBytes = workload.params.extraBinaryBytes;
    if (options.pgo) {
        art.classification = classifyTemperature(
            workload.program, *art.profile, options.classifier);
        art.image = layoutProgram(workload.program,
                                  &art.classification,
                                  art.profile.get(), layout_opts);
    } else {
        art.image = layoutProgram(workload.program, nullptr, nullptr,
                                  layout_opts);
    }

    // (6)-(8) Loader populates PTE temperature attribute bits.
    rt.pageTable = std::make_unique<PageTable>(options.pageSize);
    art.loadStats =
        loadImage(art.image, *rt.pageTable, options.pagePolicy);
    return rt;
}

RunArtifacts
runWorkload(const SyntheticWorkload &workload, const SimOptions &options)
{
    const InstCount budget = resolveBudget(options);

    WorkloadRuntime rt = prepareWorkload(workload, options);
    RunArtifacts &art = rt.art;

    // (9)-(11) Execute: MMU stamps temperatures onto fetch requests.
    Mmu mmu(*rt.pageTable);
    BranchUnit branch(options.branch);
    CacheHierarchy hier(options.hier);
    art.resolvedPolicies = {
        {"L1I", hier.l1i().policy().describe()},
        {"L1D", hier.l1d().policy().describe()},
        {"L2", hier.l2().policy().describe()},
        {"SLC", hier.slc().policy().describe()},
    };
    if (options.reuse)
        hier.setL2Observer(options.reuse);

    ExecOptions exec_opts;
    exec_opts.seed = workload.params.seed;
    exec_opts.handlerZipfSkew = workload.params.zipfSkew;
    Executor exec(workload, art.image, exec_opts);

    BackendParams backend;
    backend.dependStallPerInstr = workload.params.dependStallPerInstr;
    backend.issueStallPerInstr = workload.params.issueStallPerInstr;
    backend.otherStallPerInstr = workload.params.otherStallPerInstr;

    CoreModel core(exec, hier, mmu, branch, options.core, backend);
    core.setCostlyTracker(options.costly);
    core.setCancelToken(options.cancel);
    art.result = core.run(budget);
    return std::move(rt.art);
}

} // namespace trrip
