/**
 * @file
 * The engine's golden-fingerprint equivalence table, shared between
 * the ctest guard (tests/test_golden.cc) and the parallel-throughput
 * bench (bench/throughput_parallel.cc), which re-verifies the same
 * 16 tuples through the worker pool so parallel execution is held to
 * the identical bit-exactness contract as serial.
 *
 * Each case runs the full co-design pipeline on a fixed (workload,
 * policy, seed, budget) tuple and folds every simulation counter --
 * per-level cache stats, prefetch, TLB, branch, the retired
 * instruction count and the exact cycle total -- into one FNV-1a
 * fingerprint pinned in golden.cc.  Any change to these fingerprints
 * is a simulation-behavior change and must be justified, not just
 * re-pinned.
 */

#ifndef TRRIP_SIM_GOLDEN_HH
#define TRRIP_SIM_GOLDEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace trrip {

/** Budget every golden case simulates (cheap enough for ASan ctest). */
constexpr InstCount kGoldenBudget = 120'000;

/**
 * One pinned configuration.  Beyond (workload, policy, pgo), a case
 * can deviate from the Table 1 defaults along the axes the fig8 /
 * fig9 sensitivity benches sweep -- the compiler hot threshold, the
 * L2 geometry -- plus the FDIP lookahead depth, so the guard also
 * covers configurations that stress the run-ahead window and the
 * eviction cascade.  A zero value means "leave the default".
 */
struct GoldenCase
{
    const char *workload;
    const char *policy;
    bool pgo;
    double percentileHot;       //!< fig8 axis; 0 = default.
    std::uint64_t l2SizeKb;     //!< fig9a axis; 0 = default (128).
    std::uint32_t l2Assoc;      //!< fig9b axis; 0 = default (8).
    unsigned fdipLookahead;     //!< Run-ahead depth; 0 = default (8).
    std::uint64_t expected;

    /** kGoldenBudget SimOptions with this case's deviations applied. */
    SimOptions options() const;
};

/** The pinned table (16 tuples). */
const std::vector<GoldenCase> &goldenCases();

/**
 * One pinned trace-replay configuration.  `trace` names a mini-pack
 * trace (src/trace/generate.hh); callers generate the pack and
 * resolve the name to a path themselves (this table must not depend
 * on where the pack was written), then replay via trace::runTrace at
 * kGoldenBudget.  The streaming trace's gather cluster keeps the
 * block-split seam (kBBEventDataSlots) inside the pinned behavior.
 */
struct TraceGoldenCase
{
    const char *trace;      //!< Mini-pack trace name, not a path.
    const char *policy;     //!< L2 policy spec.
    bool pgo;
    std::uint64_t expected;

    /** kGoldenBudget SimOptions for this case. */
    SimOptions options() const;
};

/** The pinned trace-replay table. */
const std::vector<TraceGoldenCase> &traceGoldenCases();

/**
 * One pinned multi-core configuration (sim/multicore.hh).  `workloads`
 * is the '+'-separated per-core list of an `mc:` label; an `@name`
 * element names a mini-pack trace (src/trace/generate.hh) the caller
 * resolves to a `trace:<path>` label, exactly like TraceGoldenCase.
 * The expected value is the multiCoreFingerprint() of the run at
 * kGoldenBudget per core -- every core's counters plus the shared
 * SLC snapshot and DRAM totals.
 */
struct MultiCoreGoldenCase
{
    const char *workloads;  //!< Per-core labels, '+'-separated.
    const char *policy;     //!< Every core's L2 policy spec.
    bool pgo;
    std::uint64_t expected;

    /** kGoldenBudget SimOptions for this case. */
    SimOptions options() const;
};

/** The pinned multi-core table (2- and 4-core bundles). */
const std::vector<MultiCoreGoldenCase> &multiCoreGoldenCases();

/**
 * Fingerprint every integer counter plus the exact cycle total; if
 * @p dump_out is non-null it receives a named counter dump for
 * mismatch diagnostics.
 */
std::uint64_t goldenFingerprint(const SimResult &result,
                                std::string *dump_out = nullptr);

} // namespace trrip

#endif // TRRIP_SIM_GOLDEN_HH
