/**
 * @file
 * Multi-core simulation driver: N per-core event streams (proxy
 * executors or trace replays) round-robin-interleaved over one
 * MultiCoreHierarchy, plus the `mc:a+b+...` workload-name scheme the
 * experiment layer resolves.
 *
 * Determinism contract: the schedule is a fixed round-robin over core
 * ids in quanta of `quantum` retired instructions, every core's own
 * trajectory is governed by CoreModel's `run(n) == { step(n);
 * finalize(); }` identity, and the only cross-core coupling is the
 * shared SLC content / owner masks and the shared DRAM channel
 * timeline -- all deterministic state.  The same spec therefore
 * produces bit-identical results on any thread of any run, and a
 * one-core multi-core spec is construction-for-construction the
 * single-core pipeline (prepareWorkload / prepareTrace are shared),
 * so its fingerprints match the pinned single-core goldens exactly.
 */

#ifndef TRRIP_SIM_MULTICORE_HH
#define TRRIP_SIM_MULTICORE_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "trace/replay.hh"

namespace trrip {

/** Workload-axis prefix naming a multi-core bundle. */
constexpr const char *kMultiCorePrefix = "mc:";

/** True when @p name is an `mc:a+b+...` workload label. */
bool isMultiCoreName(const std::string &name);

/**
 * The per-core workload labels of an `mc:` label, in core order.
 * Each element is a proxy name or a `trace:<path>` label; empty when
 * @p name is not a multi-core label.
 */
std::vector<std::string> multiCoreWorkloadsOf(const std::string &name);

/** Options for one multi-core run. */
struct MultiCoreOptions
{
    /**
     * Per-core SimOptions template (budget, fidelity mode, hierarchy
     * geometry/policies, classifier, ...).  base.hier seeds
     * MultiCoreParams::hier; the L2 policy spec argument of
     * runMultiCore() is applied on top, mirroring runTrace().
     */
    SimOptions base;

    /**
     * Retired-instruction quantum of the round-robin schedule.  Any
     * positive value is deterministic; smaller quanta interleave
     * shared-resource traffic more finely.
     */
    InstCount quantum = 10'000;

    /**
     * Per-core instruction budgets; empty = every core runs
     * resolveBudget(base).  Shorter-budget cores simply drop out of
     * the rotation early (the one-core-stalls-others-progress test).
     */
    std::vector<InstCount> coreBudgets;

    /** Forwarded to MultiCoreParams (the differential's reference). */
    bool naiveBackInvalidate = false;

    /** Workload-name -> parameters; defaults to proxyParams(). */
    std::function<WorkloadParams(const std::string &)> paramsFor;

    /**
     * Optional shared training-profile provider (exp::ProfileCache);
     * null = each core collects its own profile.
     */
    std::function<std::shared_ptr<const Profile>(
        const SyntheticWorkload &, InstCount)> profileProvider;

    /** Optional shared trace-index provider (exp::ProfileCache). */
    std::function<std::shared_ptr<const trace::TraceIndex>(
        const std::string &)> traceIndexProvider;
};

/** Everything one multi-core run produces. */
struct MultiCoreResult
{
    /** Per-core artifacts, in core order.  Every core's result.slc is
     *  the end-of-run shared-SLC snapshot (cores are finalized only
     *  after all stepping completes, so the snapshot is
     *  schedule-position-independent). */
    std::vector<RunArtifacts> cores;
    CacheStats slc;                 //!< Shared-SLC stats.
    std::uint64_t dramReads = 0;    //!< Shared-channel totals.
    std::uint64_t dramWrites = 0;
};

/**
 * Run @p core_workloads (proxy names / `trace:<path>` labels, one per
 * core) against @p policy_spec (every core's L2 policy, mirroring
 * CoDesignPipeline::run) under @p options.  One core bypasses
 * MultiCoreHierarchy entirely -- the plain single-core CacheHierarchy
 * runs, so N=1 is bit-identical to runWorkload()/runTrace().
 */
MultiCoreResult runMultiCore(
    const std::vector<std::string> &core_workloads,
    const std::string &policy_spec, const MultiCoreOptions &options);

/**
 * Fold every core's goldenFingerprint() plus the shared DRAM totals
 * into one FNV-1a fingerprint (the multi-core golden-table value).
 * The shared-SLC snapshot is already inside each core's fingerprint.
 */
std::uint64_t multiCoreFingerprint(const MultiCoreResult &result);

/**
 * Collapse a multi-core run into one SimResult for the generic metric
 * sinks: counters sum across cores, cycles is the slowest core (the
 * bundle's makespan), the SLC block is the shared snapshot, and the
 * MPKI rates are recomputed from the summed counters.
 */
SimResult aggregateMultiCore(const MultiCoreResult &result);

} // namespace trrip

#endif // TRRIP_SIM_MULTICORE_HH
