/**
 * @file
 * Top-Down cycle accounting buckets (Yasin, ISPASS 2014), in the
 * breakdown the paper uses for Figs. 1 and 2: retire, ifetch,
 * mispred., depend, issue, mem, other.
 */

#ifndef TRRIP_SIM_TOPDOWN_HH
#define TRRIP_SIM_TOPDOWN_HH

namespace trrip {

/** Accumulated cycles per Top-Down bucket. */
struct TopDown
{
    double retire = 0.0;   //!< Useful work.
    double ifetch = 0.0;   //!< Instruction cache miss stalls.
    double mispred = 0.0;  //!< Branch misprediction penalties.
    double depend = 0.0;   //!< Data dependency stalls.
    double issue = 0.0;    //!< Saturated issue queues.
    double mem = 0.0;      //!< Backend data access stalls.
    double other = 0.0;    //!< Everything else (TLB walks, misc).

    double
    total() const
    {
        return retire + ifetch + mispred + depend + issue + mem + other;
    }

    /** Fraction of total cycles in one bucket; 0 when empty. */
    double
    fraction(double bucket) const
    {
        const double t = total();
        return t > 0.0 ? bucket / t : 0.0;
    }
};

} // namespace trrip

#endif // TRRIP_SIM_TOPDOWN_HH
