#include "sim/multicore.hh"

#include <algorithm>

#include "core/policy_registry.hh"
#include "sim/golden.hh"
#include "trace/source.hh"
#include "util/logging.hh"
#include "workloads/builder.hh"
#include "workloads/proxies.hh"

namespace trrip {

bool
isMultiCoreName(const std::string &name)
{
    return name.rfind(kMultiCorePrefix, 0) == 0;
}

std::vector<std::string>
multiCoreWorkloadsOf(const std::string &name)
{
    std::vector<std::string> out;
    if (!isMultiCoreName(name))
        return out;
    const std::string body =
        name.substr(std::string(kMultiCorePrefix).size());
    std::size_t start = 0;
    while (start <= body.size()) {
        const std::size_t plus = body.find('+', start);
        const std::size_t end =
            plus == std::string::npos ? body.size() : plus;
        if (end > start)
            out.push_back(body.substr(start, end - start));
        if (plus == std::string::npos)
            break;
        start = plus + 1;
    }
    return out;
}

namespace {

/**
 * Everything one core's lane owns: the software artifacts, the event
 * source feeding it, and the stepped CoreModel.  Construction mirrors
 * runWorkload()/runTrace() exactly (both share prepareWorkload /
 * prepareTrace), so a one-core bundle is the single-core pipeline.
 */
struct CoreRuntime
{
    RunArtifacts art;
    std::unique_ptr<SyntheticWorkload> workload;  //!< Proxy lanes only.
    std::unique_ptr<PageTable> pageTable;
    std::unique_ptr<Mmu> mmu;
    std::unique_ptr<BranchUnit> branch;
    /** Own stack for the N=1 bypass; null when sharing the SLC. */
    std::unique_ptr<CacheHierarchy> ownHier;
    CacheHierarchy *hier = nullptr;
    std::unique_ptr<Executor> exec;
    std::unique_ptr<trace::TraceEventSource> traceSource;
    std::unique_ptr<CoreModel> core;
    InstCount budget = 0;
};

void
sumCacheStats(CacheStats &into, const CacheStats &from)
{
    into.demandAccesses += from.demandAccesses;
    into.demandMisses += from.demandMisses;
    into.instDemandAccesses += from.instDemandAccesses;
    into.instDemandMisses += from.instDemandMisses;
    into.dataDemandAccesses += from.dataDemandAccesses;
    into.dataDemandMisses += from.dataDemandMisses;
    into.prefetchFills += from.prefetchFills;
    into.fills += from.fills;
    into.evictions += from.evictions;
    into.writebacks += from.writebacks;
    into.invalidations += from.invalidations;
    for (std::size_t t = 0; t < from.evictionsByTemp.size(); ++t)
        into.evictionsByTemp[t] += from.evictionsByTemp[t];
    into.instEvictions += from.instEvictions;
    into.dataEvictions += from.dataEvictions;
}

void
foldBytes(std::uint64_t &h, std::uint64_t value)
{
    for (unsigned i = 0; i < 8; ++i) {
        h ^= (value >> (i * 8)) & 0xffu;
        h *= 0x100000001b3ull;
    }
}

} // namespace

MultiCoreResult
runMultiCore(const std::vector<std::string> &core_workloads,
             const std::string &policy_spec,
             const MultiCoreOptions &options)
{
    const unsigned n = static_cast<unsigned>(core_workloads.size());
    panic_if(n == 0, "runMultiCore: no core workloads");
    panic_if(options.quantum == 0, "runMultiCore: zero quantum");
    panic_if(!options.coreBudgets.empty() &&
                 options.coreBudgets.size() != core_workloads.size(),
             "runMultiCore: ", options.coreBudgets.size(),
             " budgets for ", n, " cores");

    SimOptions opts = options.base;
    opts.hier.l2Policy = PolicySpec(policy_spec);

    // The shared fabric.  One core bypasses MultiCoreHierarchy: the
    // plain single-core CacheHierarchy runs, so N=1 is bit-identical
    // to runWorkload()/runTrace() (the inclusive shared-SLC protocol
    // and owner masks never even construct).
    std::unique_ptr<MultiCoreHierarchy> shared;
    if (n > 1) {
        MultiCoreParams mp;
        mp.hier = opts.hier;
        mp.numCores = n;
        mp.naiveBackInvalidate = options.naiveBackInvalidate;
        shared = std::make_unique<MultiCoreHierarchy>(mp);
    }

    std::vector<CoreRuntime> lanes(n);
    for (unsigned c = 0; c < n; ++c) {
        CoreRuntime &rt = lanes[c];
        const std::string &label = core_workloads[c];
        rt.budget = options.coreBudgets.empty()
                        ? resolveBudget(opts)
                        : options.coreBudgets[c];
        if (rt.budget == 0)
            rt.budget = resolveBudget(opts);

        BackendParams backend;
        BBEventSource *source = nullptr;
        if (trace::isTraceName(label)) {
            const std::string path = trace::tracePathOf(label);
            std::shared_ptr<const trace::TraceIndex> index;
            if (options.traceIndexProvider)
                index = options.traceIndexProvider(path);
            trace::TraceRuntime trt =
                trace::prepareTrace(path, opts, std::move(index));
            rt.art = std::move(trt.art);
            rt.pageTable = std::move(trt.pageTable);
            rt.traceSource =
                std::make_unique<trace::TraceEventSource>(path);
            source = rt.traceSource.get();
            // Traces carry no synthetic stall model (runTrace()).
        } else {
            const WorkloadParams params = options.paramsFor
                                              ? options.paramsFor(label)
                                              : proxyParams(label);
            rt.workload = std::make_unique<SyntheticWorkload>(
                buildWorkload(params));
            SimOptions wopts = opts;
            if (options.profileProvider) {
                wopts.precomputedProfile = options.profileProvider(
                    *rt.workload, resolveProfileBudget(wopts));
            }
            WorkloadRuntime wrt = prepareWorkload(*rt.workload, wopts);
            rt.art = std::move(wrt.art);
            rt.pageTable = std::move(wrt.pageTable);

            ExecOptions exec_opts;
            exec_opts.seed = rt.workload->params.seed;
            exec_opts.handlerZipfSkew = rt.workload->params.zipfSkew;
            rt.exec = std::make_unique<Executor>(
                *rt.workload, rt.art.image, exec_opts);
            source = rt.exec.get();

            backend.dependStallPerInstr =
                rt.workload->params.dependStallPerInstr;
            backend.issueStallPerInstr =
                rt.workload->params.issueStallPerInstr;
            backend.otherStallPerInstr =
                rt.workload->params.otherStallPerInstr;
        }

        rt.mmu = std::make_unique<Mmu>(*rt.pageTable);
        rt.branch = std::make_unique<BranchUnit>(opts.branch);
        if (shared) {
            rt.hier = &shared->core(c);
        } else {
            rt.ownHier = std::make_unique<CacheHierarchy>(opts.hier);
            rt.hier = rt.ownHier.get();
        }
        rt.art.resolvedPolicies = {
            {"L1I", rt.hier->l1i().policy().describe()},
            {"L1D", rt.hier->l1d().policy().describe()},
            {"L2", rt.hier->l2().policy().describe()},
            {"SLC", rt.hier->slc().policy().describe()},
        };
        if (opts.reuse)
            rt.hier->setL2Observer(opts.reuse);

        rt.core = std::make_unique<CoreModel>(
            *source, *rt.hier, *rt.mmu, *rt.branch, opts.core, backend);
        rt.core->setCostlyTracker(opts.costly);
        rt.core->setCancelToken(opts.cancel);
    }

    // Deterministic round-robin: each rotation advances every
    // unfinished core by one quantum in core-id order.  A finished
    // core drops out; the others keep rotating (per-core budgets are
    // independent).
    while (true) {
        bool all_done = true;
        for (CoreRuntime &rt : lanes) {
            if (rt.core->retired() >= rt.budget)
                continue;
            all_done = false;
            rt.core->step(std::min<InstCount>(
                rt.budget, rt.core->retired() + options.quantum));
        }
        if (all_done)
            break;
    }

    // Finalize only after ALL stepping: every core's result.slc is
    // then the same end-of-run shared snapshot, independent of the
    // core's position in the rotation.
    MultiCoreResult result;
    result.cores.reserve(n);
    for (CoreRuntime &rt : lanes) {
        rt.art.result = rt.core->finalize();
        result.cores.push_back(std::move(rt.art));
    }
    if (shared) {
        result.slc = shared->slc().stats();
        result.dramReads = shared->dram().reads();
        result.dramWrites = shared->dram().writes();
    } else {
        result.slc = lanes[0].hier->slc().stats();
        result.dramReads = lanes[0].hier->dram().reads();
        result.dramWrites = lanes[0].hier->dram().writes();
    }
    return result;
}

std::uint64_t
multiCoreFingerprint(const MultiCoreResult &result)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const RunArtifacts &core : result.cores)
        foldBytes(h, goldenFingerprint(core.result));
    foldBytes(h, result.dramReads);
    foldBytes(h, result.dramWrites);
    return h;
}

SimResult
aggregateMultiCore(const MultiCoreResult &result)
{
    SimResult sum;
    for (const RunArtifacts &core : result.cores) {
        const SimResult &r = core.result;
        sum.instructions += r.instructions;
        sum.cycles = std::max(sum.cycles, r.cycles);
        sum.topdown.retire += r.topdown.retire;
        sum.topdown.ifetch += r.topdown.ifetch;
        sum.topdown.mispred += r.topdown.mispred;
        sum.topdown.depend += r.topdown.depend;
        sum.topdown.issue += r.topdown.issue;
        sum.topdown.mem += r.topdown.mem;
        sum.topdown.other += r.topdown.other;
        sumCacheStats(sum.l1i, r.l1i);
        sumCacheStats(sum.l1d, r.l1d);
        sumCacheStats(sum.l2, r.l2);
        sum.prefetch.issued += r.prefetch.issued;
        sum.prefetch.covered += r.prefetch.covered;
        sum.prefetch.late += r.prefetch.late;
        sum.branch.branches += r.branch.branches;
        sum.branch.mispredicts += r.branch.mispredicts;
        sum.branch.btbMisses += r.branch.btbMisses;
        sum.tlb.accesses += r.tlb.accesses;
        sum.tlb.misses += r.tlb.misses;
        sum.l2HotEvictions += r.l2HotEvictions;
        sum.fast.lookups += r.fast.lookups;
        sum.fast.hits += r.fast.hits;
        sum.fast.records += r.fast.records;
        sum.fast.ineligible += r.fast.ineligible;
        sum.fast.genInvalidations += r.fast.genInvalidations;
        sum.fast.branchInvalidations += r.fast.branchInvalidations;
        sum.fast.conflictEvictions += r.fast.conflictEvictions;
    }
    sum.slc = result.slc;
    if (sum.instructions > 0) {
        const double kilo =
            static_cast<double>(sum.instructions) / 1000.0;
        sum.l2InstMpki =
            static_cast<double>(sum.l2.instDemandMisses) / kilo;
        sum.l2DataMpki =
            static_cast<double>(sum.l2.dataDemandMisses) / kilo;
    }
    return sum;
}

} // namespace trrip
