/**
 * @file
 * End-to-end simulation assembly: profile collection, temperature
 * classification, layout, loading, and the timed run -- the numbered
 * flow of paper Fig. 4.
 */

#ifndef TRRIP_SIM_SIMULATOR_HH
#define TRRIP_SIM_SIMULATOR_HH

#include <memory>

#include "analysis/costly_miss.hh"
#include "analysis/reuse_distance.hh"
#include "branch/predictors.hh"
#include "cache/hierarchy.hh"
#include "sim/core_model.hh"
#include "sw/layout.hh"
#include "sw/loader.hh"
#include "workloads/executor.hh"

namespace trrip {

/** Options for one simulation run. */
struct SimOptions
{
    /** Instructions to simulate; 0 = defaultInstrBudget(). */
    InstCount maxInstructions = 0;
    /** Instrumented training-run length; 0 = budget / 4. */
    InstCount profileInstructions = 0;

    /**
     * The simulation fidelity axis rides in core.mode (SimMode):
     * Auto (the default) resolves TRRIP_SIM_MODE at CoreModel
     * construction, so experiment grids switch engines through the
     * environment without touching any spec.  Golden-pinned suites
     * set SimMode::Exact explicitly.
     */
    HierarchyParams hier;
    CoreParams core;
    BranchParams branch;

    bool pgo = true;                 //!< Use the PGO layout + sections.
    ClassifierOptions classifier;
    LayoutOptions layout;
    MixedPagePolicy pagePolicy = MixedPagePolicy::DisableMark;
    std::uint32_t pageSize = 4096;

    /** Optional caller-owned instrumentation hooks. */
    ReuseDistanceProfiler *reuse = nullptr;
    CostlyMissTracker *costly = nullptr;

    /**
     * Optional cooperative-cancellation token (deadline enforcement;
     * see CoreModel::setCancelToken).  Caller-owned; the experiment
     * layer wires the worker's token in per cell.
     */
    const CancelToken *cancel = nullptr;

    /**
     * Optional precomputed training profile (the profile depends only
     * on the workload and profile budget, so pipelines cache it across
     * policy runs).  Shared, never deep-copied: concurrent runs of the
     * same workload all reference one immutable Profile.
     */
    std::shared_ptr<const Profile> precomputedProfile;
};

/** Everything one run produces, including the software artifacts. */
struct RunArtifacts
{
    /** The training profile used (shared when precomputed). */
    std::shared_ptr<const Profile> profile;
    Classification classification;
    ElfImage image;
    LoadStats loadStats;
    SimResult result;
    /**
     * Level label -> ReplacementPolicy::describe() of the policy that
     * actually ran there ({"L1I", "LRU"}, {"L2", "TRRIP-2(bits=2)"},
     * ...), recorded so result sinks can emit the fully resolved
     * configuration alongside every row.
     */
    std::vector<std::pair<std::string, std::string>> resolvedPolicies;
};

/**
 * Default per-run instruction budget: TRRIP_INSTR_MILLIONS million
 * instructions from the environment, else 6 million (the paper runs
 * 400M per benchmark on a cluster; this is the laptop-scale default).
 */
InstCount defaultInstrBudget();

/** The evaluation budget @p options resolves to. */
InstCount resolveBudget(const SimOptions &options);

/**
 * The training budget @p options resolves to (paper Fig. 4 step 2).
 * This is the single source of the fallback rule: profile caches key
 * on it and runWorkload() collects with it.
 */
InstCount resolveProfileBudget(const SimOptions &options);

/**
 * Run the instrumentation (training) execution and collect the PGO
 * profile (paper Fig. 4, steps 2-3).  Uses the non-PGO layout, the
 * training seed and the training Zipf skew.
 */
Profile collectProfile(const SyntheticWorkload &workload,
                       InstCount instructions);

/**
 * The software half of a run: artifacts plus the page table they were
 * loaded into -- everything runWorkload() builds before the engine
 * (Mmu/BranchUnit/CacheHierarchy/Executor/CoreModel) exists.  Split
 * out so drivers that own their engine loop (the multi-core
 * round-robin in sim/multicore.hh) share one construction path with
 * the single-core pipeline.
 */
struct WorkloadRuntime
{
    RunArtifacts art;
    std::unique_ptr<PageTable> pageTable;
};

/**
 * Steps (2)-(8) of the Fig. 4 flow: profile (or adopt the
 * precomputed one), classify, lay out, load.  runWorkload() is
 * exactly prepareWorkload() followed by the engine run.
 */
WorkloadRuntime prepareWorkload(const SyntheticWorkload &workload,
                                const SimOptions &options);

/**
 * Run the whole pipeline for one workload.  Every cache level's
 * replacement policy comes from the per-level specs in
 * options.hier (l1iPolicy / l1dPolicy / l2Policy / slcPolicy).
 */
RunArtifacts runWorkload(const SyntheticWorkload &workload,
                         const SimOptions &options);

} // namespace trrip

#endif // TRRIP_SIM_SIMULATOR_HH
