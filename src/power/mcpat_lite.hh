/**
 * @file
 * McPAT-lite: an analytical static power / area model for the on-chip
 * components (core + L1I + L1D + L2 slice) at a 22nm-class node,
 * reproducing the methodology of paper Table 4.
 *
 * The model counts the storage each replacement mechanism adds and
 * converts bits to area/leakage with per-KB SRAM constants; mechanisms
 * that also add datapath logic (Emissary's starvation tracking) carry
 * a documented logic estimate.  Constants are calibrated so a 64 kB
 * SHiP predictor lands at the paper's ~3% area / ~1.7% static power
 * scale; what the model computes structurally is the *relative* cost
 * of each mechanism's metadata, which is the quantity Table 4 reports.
 */

#ifndef TRRIP_POWER_MCPAT_LITE_HH
#define TRRIP_POWER_MCPAT_LITE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace trrip {

/** Area (mm^2) and static power (mW) of one component. */
struct ComponentBudget
{
    double areaMm2 = 0.0;
    double staticMw = 0.0;
};

/** Per-mechanism overhead relative to the SRRIP baseline. */
struct PolicyOverhead
{
    std::string name;
    std::uint64_t extraStorageBits = 0;
    double areaPct = 0.0;
    double staticPowerPct = 0.0;
};

/** On-chip storage configuration used for the baseline budget. */
struct ChipConfig
{
    std::uint64_t l1iBytes = 64 * 1024;
    std::uint64_t l1dBytes = 64 * 1024;
    std::uint64_t l2Bytes = 128 * 1024;
    std::uint32_t lineBytes = 64;
};

/** The analytical model. */
class McPatLite
{
  public:
    explicit McPatLite(const ChipConfig &config = ChipConfig());

    /** Core + caches baseline (SRRIP: no metadata beyond RRPVs). */
    ComponentBudget baseline() const;

    /** Overhead of one evaluated mechanism (paper Table 4 row). */
    PolicyOverhead overhead(const std::string &policy_name) const;

    /** All Table 4 rows: TRRIP, CLIP, Emissary, SHiP. */
    std::vector<PolicyOverhead> table4() const;

    /** @name 22nm-class calibration constants */
    /** @{ */
    static constexpr double sramMm2PerKb = 0.0015;
    static constexpr double sramLeakMwPerKb = 0.08;
    static constexpr double coreLogicMm2 = 2.82;
    static constexpr double coreLogicLeakMw = 281.0;
    /** Emissary starvation-detection datapath estimate. */
    static constexpr double emissaryLogicMm2 = 0.021;
    static constexpr double emissaryLogicLeakMw = 1.35;
    /** @} */

  private:
    ComponentBudget storageBudget(double kilobytes) const;

    ChipConfig config_;
};

} // namespace trrip

#endif // TRRIP_POWER_MCPAT_LITE_HH
