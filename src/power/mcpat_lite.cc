#include "power/mcpat_lite.hh"

#include "util/logging.hh"

namespace trrip {

McPatLite::McPatLite(const ChipConfig &config) : config_(config) {}

ComponentBudget
McPatLite::storageBudget(double kilobytes) const
{
    return ComponentBudget{kilobytes * sramMm2PerKb,
                           kilobytes * sramLeakMwPerKb};
}

ComponentBudget
McPatLite::baseline() const
{
    const double cache_kb =
        static_cast<double>(config_.l1iBytes + config_.l1dBytes +
                            config_.l2Bytes) / 1024.0;
    const ComponentBudget sram = storageBudget(cache_kb);
    return ComponentBudget{coreLogicMm2 + sram.areaMm2,
                           coreLogicLeakMw + sram.staticMw};
}

PolicyOverhead
McPatLite::overhead(const std::string &policy_name) const
{
    PolicyOverhead out;
    out.name = policy_name;
    ComponentBudget extra{};

    const std::uint64_t total_lines =
        (config_.l1iBytes + config_.l1dBytes + config_.l2Bytes) /
        config_.lineBytes;

    if (policy_name == "TRRIP-1" || policy_name == "TRRIP-2" ||
        policy_name == "TRRIP" || policy_name == "CLIP") {
        // TRRIP reuses pre-existing PTE bits (ARM PBHA) and stores
        // nothing in the caches; CLIP only redefines insertion RRPVs.
        out.extraStorageBits = 0;
    } else if (policy_name == "Emissary") {
        // Two priority bits per line in L1s and L2, plus the decode
        // starvation detection datapath.
        out.extraStorageBits = total_lines * 2;
        extra = storageBudget(
            static_cast<double>(out.extraStorageBits) / 8.0 / 1024.0);
        extra.areaMm2 += emissaryLogicMm2;
        extra.staticMw += emissaryLogicLeakMw;
    } else if (policy_name == "SHiP") {
        // 64 kB signature history counter table at the L2.
        out.extraStorageBits = 64ull * 1024 * 8;
        extra = storageBudget(64.0);
    } else {
        fatal("no Table 4 overhead model for policy ", policy_name);
    }

    const ComponentBudget base = baseline();
    out.areaPct = 100.0 * extra.areaMm2 / base.areaMm2;
    out.staticPowerPct = 100.0 * extra.staticMw / base.staticMw;
    return out;
}

std::vector<PolicyOverhead>
McPatLite::table4() const
{
    return {overhead("TRRIP"), overhead("CLIP"), overhead("Emissary"),
            overhead("SHiP")};
}

} // namespace trrip
