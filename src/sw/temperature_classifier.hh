/**
 * @file
 * PGO code-temperature classification (paper section 4.7, Eqs. 1-2).
 *
 * The hot count threshold C_n is found by sorting the BB counters
 * descending and accumulating until Percentile_hot x C_total is
 * exceeded; C_n is the counter at which the threshold was crossed.  A
 * block is hot when its count reaches C_n.  The mirrored computation
 * with Percentile_cold classifies the negligible tail as cold;
 * everything in between is warm.  Function temperature is derived from
 * its blocks (a function is as hot as its hottest block), since the
 * paper keeps hot/cold splitting disabled and places whole functions
 * into sections.
 */

#ifndef TRRIP_SW_TEMPERATURE_CLASSIFIER_HH
#define TRRIP_SW_TEMPERATURE_CLASSIFIER_HH

#include <cstdint>
#include <vector>

#include "sw/profile.hh"
#include "sw/program.hh"
#include "util/types.hh"

namespace trrip {

/** Classifier thresholds (defaults = LLVM's profile summary). */
struct ClassifierOptions
{
    /** Percentile_hot of Eq. 1; LLVM defaults to 99%. */
    double percentileHot = 0.99;
    /** Mirrored percentile for the cold tail; LLVM uses 99.99%. */
    double percentileCold = 0.9999;
};

/** Classification result over one program + profile. */
struct Classification
{
    std::vector<Temperature> blockTemp;  //!< Indexed by block id.
    std::vector<Temperature> funcTemp;   //!< Indexed by function id.
    std::vector<std::uint64_t> funcCount; //!< Hottest-block count.
    std::uint64_t hotCountThreshold = 0;  //!< C_n for Percentile_hot.
    std::uint64_t coldCountThreshold = 0; //!< C_n for Percentile_cold.
};

/**
 * Compute C_n per Eqs. 1-2 for an arbitrary percentile over raw
 * counters.  Returns 0 for an empty/zero profile.
 */
std::uint64_t countThreshold(const std::vector<std::uint64_t> &counts,
                             double percentile);

/**
 * Classify every block and function of @p program using @p profile.
 * External functions are never classified (Temperature::None): they
 * are outside the TRRIP compiler's view (paper section 4.6).
 */
Classification classifyTemperature(const Program &program,
                                   const Profile &profile,
                                   const ClassifierOptions &options);

} // namespace trrip

#endif // TRRIP_SW_TEMPERATURE_CLASSIFIER_HH
