/**
 * @file
 * Modeled ELF executable image: temperature-tagged text sections and a
 * symbol table mapping basic blocks to virtual addresses (paper
 * Fig. 5).  The program headers the TRRIP compiler extends are modeled
 * by the per-section Temperature, which the loader consumes.
 */

#ifndef TRRIP_SW_ELF_IMAGE_HH
#define TRRIP_SW_ELF_IMAGE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hh"

namespace trrip {

/** One loadable text section with its temperature attribute. */
struct ElfSection
{
    std::string name;
    Addr vaddr = 0;
    std::uint64_t size = 0;
    Temperature temp = Temperature::None;
    bool external = false;  //!< Shared-library region (not this ELF).

    Addr end() const { return vaddr + size; }
    bool contains(Addr a) const { return a >= vaddr && a < end(); }
};

/** The laid-out image (main binary + external library region). */
struct ElfImage
{
    std::vector<ElfSection> sections;
    std::vector<Addr> blockAddr;    //!< Block id -> vaddr.
    std::vector<Addr> funcEntry;    //!< Function id -> entry vaddr.

    Addr imageBase = 0;
    Addr imageEnd = 0;              //!< End of the main binary's text.
    Addr externalBase = 0;
    Addr externalEnd = 0;
    bool pgo = false;

    /** Total file size of the main binary (text + other segments). */
    std::uint64_t binaryBytes = 0;

    /** Section containing @p a, or nullptr. */
    const ElfSection *
    sectionAt(Addr a) const
    {
        for (const auto &s : sections) {
            if (s.contains(a))
                return &s;
        }
        return nullptr;
    }

    /** Temperature of the section containing @p a (None if absent). */
    Temperature
    sectionTempAt(Addr a) const
    {
        const ElfSection *s = sectionAt(a);
        return s ? s->temp : Temperature::None;
    }

    /** True when @p a belongs to the external (shared-lib) region. */
    bool
    isExternal(Addr a) const
    {
        return a >= externalBase && a < externalEnd;
    }

    /** Total bytes across sections of the given temperature. */
    std::uint64_t
    textBytes(Temperature t) const
    {
        std::uint64_t bytes = 0;
        for (const auto &s : sections) {
            if (!s.external && s.temp == t)
                bytes += s.size;
        }
        return bytes;
    }

    /** Total main-binary text bytes. */
    std::uint64_t
    textBytes() const
    {
        std::uint64_t bytes = 0;
        for (const auto &s : sections) {
            if (!s.external)
                bytes += s.size;
        }
        return bytes;
    }
};

} // namespace trrip

#endif // TRRIP_SW_ELF_IMAGE_HH
