#include "sw/loader.hh"

#include <algorithm>

namespace trrip {

namespace {

/** Map one address range of pages, classifying each page. */
void
loadRange(const ElfImage &image, PageTable &pt, MixedPagePolicy policy,
          Addr begin, Addr end, bool external, LoadStats &stats)
{
    const std::uint64_t page = pt.pageSize();
    for (Addr p = begin & ~static_cast<Addr>(page - 1); p < end;
         p += page) {
        ++stats.codePages;
        if (external) {
            pt.map(p, Temperature::None);
            ++stats.pagesByTemp[encodeTemperature(Temperature::None)];
            continue;
        }
        // Bytes of each temperature within this page.
        std::array<std::uint64_t, 4> bytes{};
        for (const auto &s : image.sections) {
            if (s.external)
                continue;
            const Addr lo = std::max(p, s.vaddr);
            const Addr hi = std::min(p + page, s.end());
            if (lo < hi)
                bytes[encodeTemperature(s.temp)] += hi - lo;
        }
        unsigned temps_present = 0;
        unsigned dominant = 0;
        for (unsigned t = 0; t < 4; ++t) {
            if (bytes[t] > 0)
                ++temps_present;
            if (bytes[t] > bytes[dominant])
                dominant = t;
        }
        Temperature mark = decodeTemperature(
            static_cast<std::uint8_t>(dominant));
        if (temps_present > 1) {
            ++stats.mixedPages;
            if (policy == MixedPagePolicy::DisableMark)
                mark = Temperature::None;
        }
        pt.map(p, mark);
        ++stats.pagesByTemp[encodeTemperature(mark)];
    }
}

} // namespace

LoadStats
loadImage(const ElfImage &image, PageTable &pt, MixedPagePolicy policy)
{
    LoadStats stats;
    if (image.imageEnd > image.imageBase)
        loadRange(image, pt, policy, image.imageBase, image.imageEnd,
                  false, stats);
    if (image.externalEnd > image.externalBase)
        loadRange(image, pt, policy, image.externalBase,
                  image.externalEnd, true, stats);
    return stats;
}

} // namespace trrip
