/**
 * @file
 * Page table with implementation-defined PTE attribute bits.
 *
 * TRRIP reuses two implementation-defined PTE bits (ARM PBHA / x86 AVL
 * style, paper section 3.3) to carry the code temperature of a page;
 * the MMU forwards them with instruction memory requests.  Translation
 * itself is identity (vaddr == paddr) -- the interesting state is the
 * attribute plumbing.
 */

#ifndef TRRIP_SW_PAGE_TABLE_HH
#define TRRIP_SW_PAGE_TABLE_HH

#include <cstdint>
#include <unordered_map>

#include "util/logging.hh"
#include "util/types.hh"

namespace trrip {

/** One page table entry. */
struct Pte
{
    Addr ppn = 0;               //!< Physical page number.
    std::uint8_t attrs = 0;     //!< 2-bit PBHA-style temperature.

    Temperature temp() const { return decodeTemperature(attrs); }
};

/** Result of a translation. */
struct PageTranslation
{
    Addr paddr = 0;
    Temperature temp = Temperature::None;
};

/**
 * A flat single-level page table with lazy (mmap-on-touch) mapping.
 * Pages not pre-mapped by the loader appear on first touch with no
 * temperature attribute, modeling anonymous/data mappings.
 */
class PageTable
{
  public:
    explicit PageTable(std::uint32_t page_size = 4096) :
        pageSize_(page_size)
    {
        fatal_if(page_size == 0 || (page_size & (page_size - 1)) != 0,
                 "page size must be a power of two");
    }

    std::uint32_t pageSize() const { return pageSize_; }

    /** Map the page holding @p vaddr with temperature @p temp. */
    void
    map(Addr vaddr, Temperature temp)
    {
        const Addr vpn = vaddr / pageSize_;
        Pte &pte = table_[vpn];
        pte.ppn = vpn; // Identity mapping.
        pte.attrs = encodeTemperature(temp);
    }

    /** Translate @p vaddr, lazily allocating an untagged page. */
    PageTranslation
    translate(Addr vaddr)
    {
        const Addr vpn = vaddr / pageSize_;
        auto [it, inserted] = table_.try_emplace(vpn);
        if (inserted) {
            it->second.ppn = vpn;
            ++lazyMapped_;
        }
        return PageTranslation{
            it->second.ppn * pageSize_ + vaddr % pageSize_,
            it->second.temp()};
    }

    /** PTE lookup without allocation; nullptr if unmapped. */
    const Pte *
    lookup(Addr vaddr) const
    {
        const auto it = table_.find(vaddr / pageSize_);
        return it == table_.end() ? nullptr : &it->second;
    }

    std::size_t mappedPages() const { return table_.size(); }
    std::uint64_t lazyMappedPages() const { return lazyMapped_; }

  private:
    std::uint32_t pageSize_;
    std::unordered_map<Addr, Pte> table_;
    std::uint64_t lazyMapped_ = 0;
};

} // namespace trrip

#endif // TRRIP_SW_PAGE_TABLE_HH
