/**
 * @file
 * Page table with implementation-defined PTE attribute bits.
 *
 * TRRIP reuses two implementation-defined PTE bits (ARM PBHA / x86 AVL
 * style, paper section 3.3) to carry the code temperature of a page;
 * the MMU forwards them with instruction memory requests.  Translation
 * itself is identity (vaddr == paddr) -- the interesting state is the
 * attribute plumbing.
 *
 * The table is an open-addressed FlatMap keyed by virtual page number
 * and all page-size arithmetic is shift/mask (page sizes are enforced
 * powers of two), keeping translate() off the division and
 * std::unordered_map costs it used to pay per TLB miss.
 */

#ifndef TRRIP_SW_PAGE_TABLE_HH
#define TRRIP_SW_PAGE_TABLE_HH

#include <bit>
#include <cstdint>

#include "util/flat_map.hh"
#include "util/logging.hh"
#include "util/types.hh"

namespace trrip {

/** One page table entry. */
struct Pte
{
    Addr ppn = 0;               //!< Physical page number.
    std::uint8_t attrs = 0;     //!< 2-bit PBHA-style temperature.

    Temperature temp() const { return decodeTemperature(attrs); }
};

/** Result of a translation. */
struct PageTranslation
{
    Addr paddr = 0;
    Temperature temp = Temperature::None;
};

/**
 * A flat single-level page table with lazy (mmap-on-touch) mapping.
 * Pages not pre-mapped by the loader appear on first touch with no
 * temperature attribute, modeling anonymous/data mappings.
 */
class PageTable
{
  public:
    explicit PageTable(std::uint32_t page_size = 4096) :
        pageSize_(page_size)
    {
        fatal_if(page_size == 0 || (page_size & (page_size - 1)) != 0,
                 "page size must be a power of two");
        pageShift_ = static_cast<std::uint32_t>(
            std::countr_zero(page_size));
    }

    std::uint32_t pageSize() const { return pageSize_; }

    /** log2(pageSize): vaddr >> pageShift() is the page number. */
    std::uint32_t pageShift() const { return pageShift_; }

    /** pageSize - 1: vaddr & pageOffsetMask() is the page offset. */
    Addr pageOffsetMask() const { return pageSize_ - 1; }

    /** Map the page holding @p vaddr with temperature @p temp. */
    void
    map(Addr vaddr, Temperature temp)
    {
        Pte &pte = table_[vaddr >> pageShift_];
        pte.ppn = vaddr >> pageShift_; // Identity mapping.
        pte.attrs = encodeTemperature(temp);
    }

    /** Translate @p vaddr, lazily allocating an untagged page. */
    PageTranslation
    translate(Addr vaddr)
    {
        const Addr vpn = vaddr >> pageShift_;
        auto [pte, inserted] = table_.tryEmplace(vpn);
        if (inserted) {
            pte->ppn = vpn;
            ++lazyMapped_;
        }
        return PageTranslation{
            (pte->ppn << pageShift_) | (vaddr & pageOffsetMask()),
            pte->temp()};
    }

    /** PTE lookup without allocation; nullptr if unmapped. */
    const Pte *
    lookup(Addr vaddr) const
    {
        return table_.find(vaddr >> pageShift_);
    }

    std::size_t mappedPages() const { return table_.size(); }
    std::uint64_t lazyMappedPages() const { return lazyMapped_; }

  private:
    std::uint32_t pageSize_;
    std::uint32_t pageShift_ = 12;
    /** Sized for a typical loaded image (a few MiB of text + data)
     *  up front, so steady-state translation never rehashes. */
    FlatMap<Pte> table_{4096};
    std::uint64_t lazyMapped_ = 0;
};

} // namespace trrip

#endif // TRRIP_SW_PAGE_TABLE_HH
