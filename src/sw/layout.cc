#include "sw/layout.hh"

#include <algorithm>

#include "util/logging.hh"

namespace trrip {

namespace {

Addr
alignUp(Addr a, std::uint64_t align)
{
    return (a + align - 1) & ~static_cast<Addr>(align - 1);
}

/** Place one function at @p cursor; advance the cursor. */
void
placeFunction(const Program &program, const Function &fn, bool pgo,
              std::uint32_t function_align, Addr &cursor,
              ElfImage &image)
{
    cursor = alignUp(cursor, function_align);
    image.funcEntry[fn.id] = cursor;

    const auto place = [&](std::uint32_t bb) {
        image.blockAddr[bb] = cursor;
        cursor += program.block(bb).bytes();
    };

    if (pgo) {
        // Fall-through chain first, rare blocks after.
        for (std::uint32_t bb : fn.body)
            place(bb);
        for (std::int32_t rare : fn.rareAfter) {
            if (rare >= 0)
                place(static_cast<std::uint32_t>(rare));
        }
    } else {
        // Rare blocks interleaved where the source put them.
        for (std::size_t i = 0; i < fn.body.size(); ++i) {
            place(fn.body[i]);
            if (fn.rareAfter[i] >= 0)
                place(static_cast<std::uint32_t>(fn.rareAfter[i]));
        }
    }
}

} // namespace

ElfImage
layoutProgram(const Program &program,
              const Classification *classification,
              const Profile *profile, const LayoutOptions &options)
{
    const bool pgo = classification != nullptr;
    panic_if(pgo && profile == nullptr,
             "PGO layout requires the profile for function ordering");

    ElfImage image;
    image.pgo = pgo;
    image.imageBase = options.imageBase;
    image.blockAddr.assign(program.numBlocks(), 0);
    image.funcEntry.assign(program.numFunctions(), 0);

    std::vector<std::uint32_t> internal;
    std::vector<std::uint32_t> external;
    for (const Function &fn : program.functions()) {
        (fn.kind == FuncKind::External ? external : internal)
            .push_back(fn.id);
    }

    Addr cursor = options.imageBase;
    if (!pgo) {
        // Single .text in source order.
        const Addr start = cursor;
        for (std::uint32_t f : internal)
            placeFunction(program, program.function(f), false,
                          options.functionAlign, cursor, image);
        cursor += options.extraColdTextBytes;
        image.sections.push_back(ElfSection{
            ".text", start, cursor - start, Temperature::None, false});
    } else {
        // Partition by classified temperature; order hot functions by
        // descending hotness, keep warm/cold in source order.
        std::vector<std::uint32_t> by_temp[3];
        for (std::uint32_t f : internal) {
            switch (classification->funcTemp[f]) {
              case Temperature::Hot:
                by_temp[0].push_back(f);
                break;
              case Temperature::Warm:
                by_temp[1].push_back(f);
                break;
              default:
                by_temp[2].push_back(f);
                break;
            }
        }
        std::stable_sort(by_temp[0].begin(), by_temp[0].end(),
                         [&](std::uint32_t a, std::uint32_t b) {
                             return classification->funcCount[a] >
                                    classification->funcCount[b];
                         });

        const char *names[3] = {".text.hot", ".text.warm",
                                ".text.cold"};
        const Temperature temps[3] = {Temperature::Hot,
                                      Temperature::Warm,
                                      Temperature::Cold};
        for (int s = 0; s < 3; ++s) {
            if (options.padSectionsToPage)
                cursor = alignUp(cursor, options.pageSize);
            const Addr start = cursor;
            for (std::uint32_t f : by_temp[s])
                placeFunction(program, program.function(f), true,
                              options.functionAlign, cursor, image);
            if (s == 2)
                cursor += options.extraColdTextBytes;
            image.sections.push_back(ElfSection{
                names[s], start, cursor - start, temps[s], false});
        }
    }
    image.imageEnd = cursor;

    // External library region: always a non-PGO style layout with no
    // temperature attribute.
    Addr ext_cursor = options.externalBase;
    const Addr ext_start = ext_cursor;
    for (std::uint32_t f : external)
        placeFunction(program, program.function(f), false,
                      options.functionAlign, ext_cursor, image);
    image.externalBase = ext_start;
    image.externalEnd = ext_cursor;
    if (ext_cursor > ext_start) {
        image.sections.push_back(ElfSection{
            ".text.ext", ext_start, ext_cursor - ext_start,
            Temperature::None, true});
    }

    image.binaryBytes = image.textBytes() + options.extraBinaryBytes;
    return image;
}

} // namespace trrip
