/**
 * @file
 * MMU with a small TLB.  Translation stamps the PTE temperature bits
 * onto the returned attribute so the core can attach them to
 * instruction memory requests (paper Fig. 4, interface 11).
 */

#ifndef TRRIP_SW_MMU_HH
#define TRRIP_SW_MMU_HH

#include <cstdint>
#include <vector>

#include "sw/page_table.hh"

namespace trrip {

/** TLB statistics. */
struct TlbStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
};

/** Result of an MMU translation. */
struct MmuResult
{
    Addr paddr = 0;
    Temperature temp = Temperature::None;
    bool tlbMiss = false;
};

/**
 * Direct-mapped TLB in front of the page table.  Timing of walks is
 * charged by the core model; this class is functional + stats.
 */
class Mmu
{
  public:
    explicit Mmu(PageTable &pt, std::size_t tlb_entries = 128) :
        pt_(pt), tlb_(tlb_entries), tlbMask_(tlb_entries - 1)
    {
        panic_if(tlb_entries == 0 ||
                     (tlb_entries & (tlb_entries - 1)) != 0,
                 "TLB entries must be a power of two");
    }

    /** Translate @p vaddr; fills the TLB on a miss. */
    MmuResult
    translate(Addr vaddr)
    {
        ++stats_.accesses;
        // Page sizes are powers of two; all div/mod is shift/mask.
        const std::uint32_t shift = pt_.pageShift();
        const Addr vpn = vaddr >> shift;
        Entry &e = tlb_[vpn & tlbMask_];
        if (e.valid && e.vpn == vpn) {
            return MmuResult{
                (e.ppn << shift) | (vaddr & pt_.pageOffsetMask()),
                e.temp, false};
        }
        ++stats_.misses;
        const PageTranslation tr = pt_.translate(vaddr);
        e.valid = true;
        e.vpn = vpn;
        e.ppn = tr.paddr >> shift;
        e.temp = tr.temp;
        return MmuResult{tr.paddr, tr.temp, true};
    }

    const TlbStats &stats() const { return stats_; }
    PageTable &pageTable() { return pt_; }

  private:
    struct Entry
    {
        bool valid = false;
        Addr vpn = 0;
        Addr ppn = 0;
        Temperature temp = Temperature::None;
    };

    PageTable &pt_;
    std::vector<Entry> tlb_;
    Addr tlbMask_;
    TlbStats stats_;
};

} // namespace trrip

#endif // TRRIP_SW_MMU_HH
