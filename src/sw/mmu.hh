/**
 * @file
 * MMU with a small TLB.  Translation stamps the PTE temperature bits
 * onto the returned attribute so the core can attach them to
 * instruction memory requests (paper Fig. 4, interface 11).
 */

#ifndef TRRIP_SW_MMU_HH
#define TRRIP_SW_MMU_HH

#include <cstdint>
#include <vector>

#include "sw/page_table.hh"

namespace trrip {

/** TLB statistics. */
struct TlbStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
};

/** Result of an MMU translation. */
struct MmuResult
{
    Addr paddr = 0;
    Temperature temp = Temperature::None;
    bool tlbMiss = false;
};

/**
 * Direct-mapped TLB in front of the page table.  Timing of walks is
 * charged by the core model; this class is functional + stats.
 */
class Mmu
{
  public:
    explicit Mmu(PageTable &pt, std::size_t tlb_entries = 128) :
        pt_(pt), tlb_(tlb_entries), slotGen_(tlb_entries, 0),
        tlbMask_(tlb_entries - 1)
    {
        panic_if(tlb_entries == 0 ||
                     (tlb_entries & (tlb_entries - 1)) != 0,
                 "TLB entries must be a power of two");
    }

    /** Translate @p vaddr; fills the TLB on a miss. */
    MmuResult
    translate(Addr vaddr)
    {
        ++stats_.accesses;
        // Page sizes are powers of two; all div/mod is shift/mask.
        const std::uint32_t shift = pt_.pageShift();
        const Addr vpn = vaddr >> shift;
        Entry &e = tlb_[vpn & tlbMask_];
        if (e.valid && e.vpn == vpn) {
            return MmuResult{
                (e.ppn << shift) | (vaddr & pt_.pageOffsetMask()),
                e.temp, false};
        }
        ++stats_.misses;
        const PageTranslation tr = pt_.translate(vaddr);
        // A resident translation is being displaced: stale any
        // fast-mode memo that proved a hit in this slot.  Filling an
        // invalid slot displaces nothing, and the hit path above is
        // untouched.
        slotGen_[vpn & tlbMask_] += e.valid;
        e.valid = true;
        e.vpn = vpn;
        e.ppn = tr.paddr >> shift;
        e.temp = tr.temp;
        return MmuResult{tr.paddr, tr.temp, true};
    }

    const TlbStats &stats() const { return stats_; }
    PageTable &pageTable() { return pt_; }

    /**
     * @name Fast-mode residency generations
     * Per-slot displacement counters mirroring Cache::setGeneration():
     * a translation proved TLB-resident at generation g is still
     * resident while its slot's generation stays g.
     */
    /** @{ */
    std::uint32_t
    slotOf(Addr vaddr) const
    {
        return static_cast<std::uint32_t>(
            (vaddr >> pt_.pageShift()) & tlbMask_);
    }
    std::uint32_t
    slotGeneration(std::uint32_t slot) const
    {
        return slotGen_[slot];
    }
    /** @} */

    /**
     * Credit @p n TLB-hit accesses without probing -- the fast-mode
     * replay path's counterpart of Cache::creditDemandHits().
     */
    void creditHits(std::uint64_t n) { stats_.accesses += n; }

  private:
    struct Entry
    {
        bool valid = false;
        Addr vpn = 0;
        Addr ppn = 0;
        Temperature temp = Temperature::None;
    };

    PageTable &pt_;
    std::vector<Entry> tlb_;
    /** Per-slot displacement generation (see slotGeneration()). */
    std::vector<std::uint32_t> slotGen_;
    Addr tlbMask_;
    TlbStats stats_;
};

} // namespace trrip

#endif // TRRIP_SW_MMU_HH
