/**
 * @file
 * Program loader: reads the temperature-annotated program headers of
 * an ElfImage and populates PTE attribute bits (paper section 3.3).
 *
 * A page overlapping two sections of different temperature is handled
 * per the prevention mechanisms of paper section 4.9: padding is a
 * layout-time option (LayoutOptions::padSectionsToPage); at load time
 * the policy below picks between not marking mixed pages at all and
 * marking them with the temperature owning the most bytes.
 */

#ifndef TRRIP_SW_LOADER_HH
#define TRRIP_SW_LOADER_HH

#include <array>
#include <cstdint>

#include "sw/elf_image.hh"
#include "sw/page_table.hh"

namespace trrip {

/** What to do with pages that mix code temperatures. */
enum class MixedPagePolicy
{
    DisableMark,    //!< Leave mixed pages untagged (safe default).
    MarkDominant,   //!< Tag with the temperature owning most bytes.
};

/** Load-time accounting (feeds the Table 5 bench). */
struct LoadStats
{
    std::uint64_t codePages = 0;
    std::array<std::uint64_t, 4> pagesByTemp{}; //!< By Temperature.
    std::uint64_t mixedPages = 0;
};

/**
 * Populate @p pt for every code page of @p image.  External-region
 * pages are mapped but never temperature-tagged.
 */
LoadStats loadImage(const ElfImage &image, PageTable &pt,
                    MixedPagePolicy policy);

} // namespace trrip

#endif // TRRIP_SW_LOADER_HH
