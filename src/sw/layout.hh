/**
 * @file
 * Code layout engine -- the linker half of the synthetic compiler.
 *
 * Non-PGO layout: functions in source order, each function's rare
 * (unlikely-path) blocks inline between its body blocks -- the branchy,
 * sparse layout of unoptimized binaries.
 *
 * PGO layout (paper sections 3.2, Fig. 5): within each function the
 * executed chain is packed first (fall-throughs) and rare blocks sink
 * to the end; functions are partitioned by classified temperature into
 * .text.hot / .text.warm / .text.cold, hot functions sorted by
 * descending profile count.
 *
 * External (shared-library / PLT) functions are laid out in a separate
 * address region in both modes and never carry temperature.
 */

#ifndef TRRIP_SW_LAYOUT_HH
#define TRRIP_SW_LAYOUT_HH

#include "sw/elf_image.hh"
#include "sw/profile.hh"
#include "sw/program.hh"
#include "sw/temperature_classifier.hh"

namespace trrip {

/** Layout / link options. */
struct LayoutOptions
{
    Addr imageBase = 0x400000;
    Addr externalBase = 0x7000000000ull;
    std::uint32_t functionAlign = 16;
    /**
     * Pad temperature sections to page boundaries so no page mixes
     * temperatures -- prevention mechanism (1) of paper section 4.9.
     */
    bool padSectionsToPage = false;
    std::uint32_t pageSize = 4096;
    /** Non-text binary content counted into the file size. */
    std::uint64_t extraBinaryBytes = 0;
    /**
     * Additional never-executed cold text (template bloat, error
     * paths) appended to .text.cold -- models large binaries like the
     * paper's clang (168 MB) without materializing millions of blocks.
     */
    std::uint64_t extraColdTextBytes = 0;
};

/**
 * Lay out @p program.  Passing a null @p classification produces the
 * non-PGO image; otherwise the PGO image (which also needs the
 * @p profile for hot-function ordering).
 */
ElfImage layoutProgram(const Program &program,
                       const Classification *classification,
                       const Profile *profile,
                       const LayoutOptions &options);

} // namespace trrip

#endif // TRRIP_SW_LAYOUT_HH
