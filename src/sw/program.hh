/**
 * @file
 * Program intermediate representation for the synthetic compiler.
 *
 * A Program is a set of functions; each function is an executable
 * chain of basic blocks ("body") plus unlikely-path blocks ("rare")
 * attached after individual body blocks.  The layout engine
 * (sw/layout.hh) decides where blocks land in the address space:
 * without PGO the rare blocks sit inline between body blocks (poor
 * spatial locality, taken branches over them); with PGO the executed
 * chain is packed first and rare blocks sink to the end of the
 * function (fall-throughs, dense lines) -- the classic PGO layout
 * effect the paper's section 2.3 measures.
 */

#ifndef TRRIP_SW_PROGRAM_HH
#define TRRIP_SW_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/logging.hh"
#include "util/types.hh"

namespace trrip {

/** Structural role of a function in the synthetic workload. */
enum class FuncKind : std::uint8_t {
    Dispatcher, //!< Top-level loop selecting handlers (interpreter/UI).
    Handler,    //!< Frequently invoked worker; the hot-code candidates.
    Helper,     //!< Callees of handlers; the warm-code candidates.
    Cold,       //!< Error/rare paths; almost never executed.
    External,   //!< PLT / shared-library code outside TRRIP's compile.
};

/** Synthetic data access pattern of one access site. */
enum class DataPattern : std::uint8_t {
    Sequential, //!< Line-by-line streaming through a region.
    Strided,    //!< Fixed stride through a region.
    Random,     //!< Uniform random offsets in a region.
};

/** Terminator role of a basic block. */
enum class BBRole : std::uint8_t {
    Plain,      //!< Biased conditional: likely next block vs rare path.
    LoopEnd,    //!< Back-edge of an inner loop.
    CallSite,   //!< Guarded call to another function.
};

/** Which class of function a call site targets. */
enum class CalleeClass : std::uint8_t {
    Handler,
    Helper,
    Cold,
    External,
};

/** One static data access site inside a basic block. */
struct DataAccessSpec
{
    std::uint16_t region = 0;   //!< Workload data region index.
    DataPattern pattern = DataPattern::Sequential;
    std::uint32_t stride = 64;  //!< Bytes, for Strided.
    float count = 1.0f;         //!< Mean accesses per execution.
    float storeFraction = 0.2f; //!< Probability an access is a store.
};

/** One basic block. */
struct BasicBlock
{
    std::uint32_t id = 0;
    std::uint32_t func = 0;
    std::uint32_t instrs = 12;  //!< Fixed 4-byte instructions.
    bool rare = false;          //!< Unlikely-path block.

    BBRole role = BBRole::Plain;
    /** Plain: probability of the likely (non-rare) successor. */
    double likelyProb = 0.92;
    /** LoopEnd: body blocks jumped back over. */
    std::uint32_t loopBodyLen = 1;
    /** LoopEnd: mean iterations per loop entry. */
    double loopIterMean = 4.0;
    /** CallSite: probability the call fires on a given execution. */
    double callProb = 0.5;
    CalleeClass callee = CalleeClass::Helper;

    std::vector<DataAccessSpec> data;

    /** Code bytes (4 bytes per instruction, ARM-like). */
    std::uint32_t bytes() const { return instrs * 4; }
};

/** One function. */
struct Function
{
    std::uint32_t id = 0;
    std::string name;
    FuncKind kind = FuncKind::Handler;
    std::vector<std::uint32_t> body;        //!< Executable chain.
    /** Rare block attached after body[i], or -1. Same length as body. */
    std::vector<std::int32_t> rareAfter;
};

/** A whole synthetic program. */
class Program
{
  public:
    /** Append a function shell; returns its id. */
    std::uint32_t
    addFunction(std::string name, FuncKind kind)
    {
        const auto id = static_cast<std::uint32_t>(funcs_.size());
        Function f;
        f.id = id;
        f.name = std::move(name);
        f.kind = kind;
        funcs_.push_back(std::move(f));
        return id;
    }

    /** Append a block to a function's body; returns the block id. */
    std::uint32_t
    addBodyBlock(std::uint32_t func, BasicBlock bb)
    {
        const auto id = static_cast<std::uint32_t>(blocks_.size());
        bb.id = id;
        bb.func = func;
        bb.rare = false;
        blocks_.push_back(std::move(bb));
        funcs_.at(func).body.push_back(id);
        funcs_.at(func).rareAfter.push_back(-1);
        return id;
    }

    /** Attach a rare block after body position @p pos of @p func. */
    std::uint32_t
    addRareBlock(std::uint32_t func, std::size_t pos, BasicBlock bb)
    {
        Function &f = funcs_.at(func);
        panic_if(pos >= f.body.size(), "rare block past function end");
        const auto id = static_cast<std::uint32_t>(blocks_.size());
        bb.id = id;
        bb.func = func;
        bb.rare = true;
        blocks_.push_back(std::move(bb));
        f.rareAfter.at(pos) = static_cast<std::int32_t>(id);
        return id;
    }

    const std::vector<Function> &functions() const { return funcs_; }
    const std::vector<BasicBlock> &blocks() const { return blocks_; }
    /** Executor-hot accessors: unchecked indexing (ids come from the
     *  program's own body/rareAfter tables). */
    const Function &function(std::uint32_t id) const
    { return funcs_[id]; }
    const BasicBlock &block(std::uint32_t id) const
    { return blocks_[id]; }

    std::size_t numFunctions() const { return funcs_.size(); }
    std::size_t numBlocks() const { return blocks_.size(); }

    /** Total code bytes of a function (body + rare). */
    std::uint64_t
    functionBytes(std::uint32_t id) const
    {
        const Function &f = funcs_.at(id);
        std::uint64_t bytes = 0;
        for (std::size_t i = 0; i < f.body.size(); ++i) {
            bytes += blocks_[f.body[i]].bytes();
            if (f.rareAfter[i] >= 0)
                bytes += blocks_[static_cast<std::uint32_t>(
                                     f.rareAfter[i])].bytes();
        }
        return bytes;
    }

  private:
    std::vector<Function> funcs_;
    std::vector<BasicBlock> blocks_;
};

} // namespace trrip

#endif // TRRIP_SW_PROGRAM_HH
