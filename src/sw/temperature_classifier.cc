#include "sw/temperature_classifier.hh"

#include <algorithm>

namespace trrip {

std::uint64_t
countThreshold(const std::vector<std::uint64_t> &counts,
               double percentile)
{
    std::uint64_t total = 0;
    for (auto c : counts)
        total += c;
    if (total == 0)
        return 0;

    // Eq. 1: C_threshold = C_total * Percentile.
    const double c_threshold = static_cast<double>(total) * percentile;

    // Eq. 2: sort counters descending and accumulate until the
    // threshold is exceeded; C_n is the counter that crossed it.
    std::vector<std::uint64_t> sorted(counts);
    std::sort(sorted.begin(), sorted.end(),
              std::greater<std::uint64_t>());
    std::uint64_t sum = 0;
    for (auto c : sorted) {
        if (c == 0)
            break;
        sum += c;
        if (static_cast<double>(sum) >= c_threshold)
            return c;
    }
    // Percentile so close to 1 that every non-zero counter is needed.
    std::uint64_t min_nonzero = 0;
    for (auto c : sorted) {
        if (c > 0)
            min_nonzero = c;
    }
    return min_nonzero;
}

Classification
classifyTemperature(const Program &program, const Profile &profile,
                    const ClassifierOptions &options)
{
    Classification out;
    const std::size_t nblocks = program.numBlocks();
    out.blockTemp.assign(nblocks, Temperature::None);

    // Build the counter vector over the program's blocks, excluding
    // external code: the compiler only sees what it compiles.
    std::vector<std::uint64_t> counts(nblocks, 0);
    for (std::size_t b = 0; b < nblocks; ++b) {
        const auto &blk = program.block(static_cast<std::uint32_t>(b));
        if (program.function(blk.func).kind != FuncKind::External)
            counts[b] = profile.count(static_cast<std::uint32_t>(b));
    }

    out.hotCountThreshold = countThreshold(counts,
                                           options.percentileHot);
    out.coldCountThreshold = countThreshold(counts,
                                            options.percentileCold);

    for (std::size_t b = 0; b < nblocks; ++b) {
        const auto &blk = program.block(static_cast<std::uint32_t>(b));
        if (program.function(blk.func).kind == FuncKind::External)
            continue;
        const std::uint64_t c = counts[b];
        if (out.hotCountThreshold > 0 && c >= out.hotCountThreshold)
            out.blockTemp[b] = Temperature::Hot;
        else if (c == 0 || c < out.coldCountThreshold)
            out.blockTemp[b] = Temperature::Cold;
        else
            out.blockTemp[b] = Temperature::Warm;
    }

    // Function temperature: hottest block wins; a function whose every
    // block is cold is cold; external functions stay None.
    const std::size_t nfuncs = program.numFunctions();
    out.funcTemp.assign(nfuncs, Temperature::None);
    out.funcCount.assign(nfuncs, 0);
    for (std::size_t f = 0; f < nfuncs; ++f) {
        const Function &fn = program.function(
            static_cast<std::uint32_t>(f));
        if (fn.kind == FuncKind::External)
            continue;
        Temperature best = Temperature::Cold;
        std::uint64_t best_count = 0;
        for (std::size_t i = 0; i < fn.body.size(); ++i) {
            const auto consider = [&](std::uint32_t bb) {
                best_count = std::max(best_count, counts[bb]);
                const Temperature t = out.blockTemp[bb];
                if (t == Temperature::Hot)
                    best = Temperature::Hot;
                else if (t == Temperature::Warm &&
                         best != Temperature::Hot)
                    best = Temperature::Warm;
            };
            consider(fn.body[i]);
            if (fn.rareAfter[i] >= 0)
                consider(static_cast<std::uint32_t>(fn.rareAfter[i]));
        }
        out.funcTemp[f] = best;
        out.funcCount[f] = best_count;
    }
    return out;
}

} // namespace trrip
