/**
 * @file
 * Instrumentation PGO profile: one execution counter per basic block,
 * as produced by LLVM IR instrumentation (paper section 3.2).
 */

#ifndef TRRIP_SW_PROFILE_HH
#define TRRIP_SW_PROFILE_HH

#include <cstdint>
#include <vector>

namespace trrip {

/** Basic-block execution counts from an instrumented training run. */
class Profile
{
  public:
    explicit Profile(std::size_t num_blocks = 0) : counts_(num_blocks, 0)
    {}

    /** Record one execution of block @p bb. */
    void
    record(std::uint32_t bb)
    {
        if (bb >= counts_.size())
            counts_.resize(bb + 1, 0);
        ++counts_[bb];
    }

    /** Execution count of block @p bb. */
    std::uint64_t
    count(std::uint32_t bb) const
    {
        return bb < counts_.size() ? counts_[bb] : 0;
    }

    /** Sum of all counters (C_total in the paper's Eq. 1). */
    std::uint64_t
    total() const
    {
        std::uint64_t sum = 0;
        for (auto c : counts_)
            sum += c;
        return sum;
    }

    /**
     * Merge another profile in (shared libraries accumulate profiles
     * across the applications that exercise them, paper section 3.2).
     */
    void
    merge(const Profile &other)
    {
        if (other.counts_.size() > counts_.size())
            counts_.resize(other.counts_.size(), 0);
        for (std::size_t i = 0; i < other.counts_.size(); ++i)
            counts_[i] += other.counts_[i];
    }

    std::size_t size() const { return counts_.size(); }
    const std::vector<std::uint64_t> &counts() const { return counts_; }

  private:
    std::vector<std::uint64_t> counts_;
};

} // namespace trrip

#endif // TRRIP_SW_PROFILE_HH
