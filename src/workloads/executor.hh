/**
 * @file
 * Execution engine: walks a SyntheticWorkload's control structure and
 * emits a deterministic stream of basic-block events (fetch addresses,
 * branch outcomes, data accesses) against a concrete code layout.
 *
 * Branch taken-ness is derived from layout adjacency: a successor laid
 * out immediately after the block is a fall-through (not taken),
 * anything else is taken.  The same workload therefore produces
 * taken-heavy sparse fetch in the non-PGO layout and fall-through
 * dense fetch in the PGO layout, which is exactly the code-layout
 * effect the paper's section 2.3 measures.
 */

#ifndef TRRIP_WORKLOADS_EXECUTOR_HH
#define TRRIP_WORKLOADS_EXECUTOR_HH

#include <array>
#include <cstdint>
#include <vector>

#include "branch/predictors.hh"
#include "sw/elf_image.hh"
#include "util/rng.hh"
#include "workloads/builder.hh"

namespace trrip {

/** One dynamic data access. */
struct DataAccessEvent
{
    Addr vaddr = 0;
    Addr pc = 0;
    bool isStore = false;
    bool dependent = false; //!< Serially dependent (pointer chase).
};

/** One executed basic block with its terminator and data accesses. */
struct BBEvent
{
    std::uint32_t bb = 0;
    Addr vaddr = 0;
    std::uint32_t instrs = 0;
    std::uint32_t bytes = 0;
    bool hasBranch = false;
    BranchInfo branch;
    std::uint8_t numData = 0;
    std::array<DataAccessEvent, 12> data;
    /** Scratch for the core's FDIP lookahead. */
    bool fdipMispredict = false;
};

/** Executor knobs that differ between training and evaluation runs. */
struct ExecOptions
{
    std::uint64_t seed = 1;
    double handlerZipfSkew = 0.8;
};

/** Infinite, deterministic event stream over one workload + layout. */
class Executor
{
  public:
    Executor(const SyntheticWorkload &workload, const ElfImage &image,
             const ExecOptions &options);

    /** Produce the next event (the stream never ends). */
    void next(BBEvent &ev);

    /** Dynamic call-stack depth (test hook). */
    std::size_t stackDepth() const { return stack_.size(); }

  private:
    /** One active loop: its LoopEnd position and remaining trips. */
    struct ActiveLoop
    {
        std::uint32_t pos = 0;
        std::uint32_t remaining = 0;
    };

    struct Frame
    {
        std::uint32_t func = 0;
        std::uint32_t pos = 0;
        std::int32_t pendingRare = -1;  //!< Rare block to visit next.
        /** Active loops in this frame (nesting is shallow). */
        std::vector<ActiveLoop> loops;
    };

    void emitData(const BasicBlock &bb, BBEvent &ev);
    std::uint32_t pickCallee(CalleeClass cls);
    /** Fill terminator info given the resolved successor address. */
    void setBranch(BBEvent &ev, Addr target, bool conditional,
                   bool is_call, bool is_return, bool is_indirect);

    const SyntheticWorkload &wl_;
    const ElfImage &elf_;
    Rng rng_;
    WeightedSampler handlerSampler_;
    ZipfSampler helperZipf_;
    std::vector<Frame> stack_;
    std::vector<std::uint64_t> regionCursor_;
};

} // namespace trrip

#endif // TRRIP_WORKLOADS_EXECUTOR_HH
