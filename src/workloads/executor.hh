/**
 * @file
 * Execution engine: walks a SyntheticWorkload's control structure and
 * emits a deterministic stream of basic-block events (fetch addresses,
 * branch outcomes, data accesses) against a concrete code layout.
 *
 * Branch taken-ness is derived from layout adjacency: a successor laid
 * out immediately after the block is a fall-through (not taken),
 * anything else is taken.  The same workload therefore produces
 * taken-heavy sparse fetch in the non-PGO layout and fall-through
 * dense fetch in the PGO layout, which is exactly the code-layout
 * effect the paper's section 2.3 measures.
 *
 * For speed the constructor compiles the Program + ElfImage into
 * flat executor-local tables: one compact BlockInfo per block (layout
 * address, size and terminator data in one 56-byte record instead of
 * a BasicBlock struct plus separate blockAddr lookup), the data
 * access sites of all blocks in one contiguous array, and all
 * function bodies concatenated into one id/rare-successor pair of
 * arrays.  next() then runs on dense indexed loads with no per-block
 * pointer chasing.  The emitted stream is identical to walking the
 * Program directly.
 */

#ifndef TRRIP_WORKLOADS_EXECUTOR_HH
#define TRRIP_WORKLOADS_EXECUTOR_HH

#include <array>
#include <cstdint>
#include <vector>

#include "branch/predictors.hh"
#include "sw/elf_image.hh"
#include "util/rng.hh"
#include "workloads/builder.hh"

namespace trrip {

/** One dynamic data access. */
struct DataAccessEvent
{
    Addr vaddr = 0;
    Addr pc = 0;
    bool isStore = false;
    bool dependent = false; //!< Serially dependent (pointer chase).
};

/**
 * Hard capacity of BBEvent::data.  Events carry their data accesses
 * inline so the hot consume loop never chases a heap pointer; the
 * price is that a block may not emit more than this many accesses per
 * event.  Sources that cannot bound their blocks up front (the trace
 * replayer: real code has unbounded gather/scatter runs) must SPLIT a
 * block into multiple events at this seam rather than drop accesses
 * -- see trace::TraceEventSource and tests/test_trace.cc.
 */
constexpr std::uint32_t kBBEventDataSlots = 12;

/** One executed basic block with its terminator and data accesses. */
struct BBEvent
{
    std::uint32_t bb = 0;
    Addr vaddr = 0;
    std::uint32_t instrs = 0;
    std::uint32_t bytes = 0;
    bool hasBranch = false;
    BranchInfo branch;
    std::uint8_t numData = 0;
    std::array<DataAccessEvent, kBBEventDataSlots> data;
    /** Scratch for the core's FDIP lookahead. */
    bool fdipMispredict = false;
};

/** Executor knobs that differ between training and evaluation runs. */
struct ExecOptions
{
    std::uint64_t seed = 1;
    double handlerZipfSkew = 0.8;
};

/**
 * Batched event producer -- the contract between the execution engine
 * and its consumers (CoreModel, profile collection, tests).
 *
 * The consumer owns a power-of-two ring of BBEvent slots and asks the
 * source to fill @p count consecutive slots starting at ring index
 * @p pos, wrapping with @p mask (slot k of the batch is
 * ring[(pos + k) & mask]).  The source overwrites every live field of
 * each slot; @c fdipMispredict is left false -- it belongs to the
 * consumer (the core's FDIP lookahead scan stamps it when the event
 * enters the run-ahead window, so predictor state is sampled at the
 * same point it would be in an event-at-a-time engine).
 *
 * One virtual call per *batch* (tens of events), never per event:
 * event production stays monomorphic inside the source.  Sources must
 * be pure generators -- their stream may depend only on their own
 * state, never on consumer state -- so producing events ahead of
 * consumption is behavior-preserving.
 */
class BBEventSource
{
  public:
    virtual ~BBEventSource() = default;

    /** Fill @p count slots of the caller-owned ring (see above). */
    virtual void produce(BBEvent *ring, std::uint32_t mask,
                         std::uint32_t pos, std::uint32_t count) = 0;
};

/** Infinite, deterministic event stream over one workload + layout. */
class Executor final : public BBEventSource
{
  public:
    Executor(const SyntheticWorkload &workload, const ElfImage &image,
             const ExecOptions &options);

    /** Produce the next event (the stream never ends). */
    void next(BBEvent &ev);

    /** Batched emission into a caller-owned ring (BBEventSource). */
    void produce(BBEvent *ring, std::uint32_t mask, std::uint32_t pos,
                 std::uint32_t count) override;

    /** Dynamic call-stack depth (test hook). */
    std::size_t stackDepth() const { return depth_; }

  private:
    /**
     * Compact per-block record: everything next() needs in 32 bytes
     * (two per host cache line; the blocks table is the executor's
     * hottest random-access structure).  roleParam is the one
     * role-specific scalar each terminator kind reads: likelyProb for
     * Plain, loopIterMean for LoopEnd, callProb for CallSite.
     */
    struct BlockInfo
    {
        Addr addr = 0;              //!< Layout address of the block.
        double roleParam = 1.0;
        std::uint32_t dataBegin = 0;    //!< Into dataSpecs_.
        std::uint16_t instrs = 0;       //!< Bytes = instrs * 4.
        std::uint16_t loopBodyLen = 0;
        std::uint8_t dataCount = 0;
        BBRole role = BBRole::Plain;
        CalleeClass callee = CalleeClass::Helper;
    };

    /** Compact per-function record over the concatenated body_. */
    struct FuncInfo
    {
        std::uint32_t bodyBegin = 0;    //!< Into body_/rareAfter_.
        std::uint32_t bodyLen = 0;
        bool isDispatcher = false;
    };

    /** One active loop: its LoopEnd position and remaining trips. */
    struct ActiveLoop
    {
        std::uint32_t pos = 0;
        std::uint32_t remaining = 0;
    };

    struct Frame
    {
        std::uint32_t func = 0;
        std::uint32_t pos = 0;
        std::int32_t pendingRare = -1;  //!< Rare block to visit next.
        /** Active loops in this frame (nesting is shallow). */
        std::vector<ActiveLoop> loops;
    };

    void emitData(const BlockInfo &bb, BBEvent &ev);
    std::uint32_t pickCallee(CalleeClass cls);
    /** Fill terminator info given the resolved successor address. */
    void setBranch(BBEvent &ev, Addr target, bool conditional,
                   bool is_call, bool is_return, bool is_indirect);

    /** Push a fresh frame, reusing the pooled slot (and its loops
     *  vector's capacity) above the current depth. */
    void
    pushFrame(std::uint32_t func)
    {
        if (depth_ == stack_.size())
            stack_.emplace_back();
        Frame &fr = stack_[depth_++];
        fr.func = func;
        fr.pos = 0;
        fr.pendingRare = -1;
        fr.loops.clear();
    }

    /** Compact per-region record (no std::string name, locality
     *  window pre-clamped, base address folded in). */
    struct RegionInfo
    {
        std::uint64_t sizeBytes = 0;
        std::uint64_t localityBytes = 0;    //!< min(locality, size).
        double localityFraction = 0.0;
        double dependentFraction = 0.0;
        Addr base = 0;
    };

    /** Layout address of body position @p pos of @p fn. */
    Addr
    bodyAddr(const FuncInfo &fn, std::uint32_t pos) const
    {
        return bodyAddrs_[fn.bodyBegin + pos];
    }

    const SyntheticWorkload &wl_;
    const ElfImage &elf_;
    Rng rng_;
    WeightedSampler handlerSampler_;
    ZipfSampler helperZipf_;

    /** @name Flat execution tables (see file comment) */
    /** @{ */
    std::vector<BlockInfo> blocks_;         //!< By block id.
    std::vector<DataAccessSpec> dataSpecs_; //!< All blocks, flattened.
    std::vector<std::uint32_t> body_;       //!< Concatenated bodies.
    std::vector<Addr> bodyAddrs_;           //!< Parallel to body_.
    std::vector<std::int32_t> rareAfter_;   //!< Parallel to body_.
    std::vector<FuncInfo> funcs_;           //!< By function id.
    std::vector<RegionInfo> regions_;       //!< By region index.
    /** @} */

    /**
     * Call stack as a frame pool: frames above depth_ are dead but
     * keep their loops-vector capacity, so call/return does not
     * allocate in steady state.
     */
    std::vector<Frame> stack_;
    std::size_t depth_ = 0;
    std::vector<std::uint64_t> regionCursor_;
};

} // namespace trrip

#endif // TRRIP_WORKLOADS_EXECUTOR_HH
