/**
 * @file
 * Parameter sets for the paper's proxy benchmarks (Table 2) and the
 * OpenHarmony system-software components of Fig. 1.
 *
 * Each set is sized from the paper's published per-benchmark data:
 * static hot/warm text from Table 5's page counts, binary size from
 * Table 5, and dynamic footprint / data pressure tuned so the SRRIP
 * L2 MPKIs land in the regime of Table 3 (see EXPERIMENTS.md for the
 * measured values).  These are synthetic stand-ins: the real
 * benchmarks' binaries and inputs are not reproducible offline (see
 * DESIGN.md substitution table).
 */

#ifndef TRRIP_WORKLOADS_PROXIES_HH
#define TRRIP_WORKLOADS_PROXIES_HH

#include <string>
#include <vector>

#include "workloads/spec.hh"

namespace trrip {

/** Names of the 10 proxy benchmarks, in the paper's order. */
std::vector<std::string> proxyNames();

/** Names of the Fig. 1 system-software components. */
std::vector<std::string> systemComponentNames();

/** Parameter set for a proxy benchmark or system component. */
WorkloadParams proxyParams(const std::string &name);

} // namespace trrip

#endif // TRRIP_WORKLOADS_PROXIES_HH
