/**
 * @file
 * Builds a Program from a WorkloadParams spec, deterministically.
 */

#ifndef TRRIP_WORKLOADS_BUILDER_HH
#define TRRIP_WORKLOADS_BUILDER_HH

#include "sw/program.hh"
#include "workloads/spec.hh"

namespace trrip {

/** A built workload: the program plus its originating spec. */
struct SyntheticWorkload
{
    WorkloadParams params;
    Program program;
    std::uint32_t dispatcher = 0;            //!< Dispatcher function id.
    std::vector<std::uint32_t> handlers;
    std::vector<std::uint32_t> helpers;
    std::vector<std::uint32_t> coldFuncs;
    std::vector<std::uint32_t> externals;
    std::vector<Addr> regionBase;            //!< Data region bases.
    /**
     * Intrinsic frequency multiplier per handler (core/common/rare
     * tier).  The executor combines it with the run's Zipf skew.
     */
    std::vector<double> handlerTierWeight;
};

/**
 * Construct the synthetic program for @p params.  Structure depends
 * only on params (including the seed), never on which layout or policy
 * later runs it.
 */
SyntheticWorkload buildWorkload(const WorkloadParams &params);

} // namespace trrip

#endif // TRRIP_WORKLOADS_BUILDER_HH
