#include "workloads/executor.hh"

#include <algorithm>

#include "util/logging.hh"

namespace trrip {

namespace {

/**
 * Handler selection weights: intrinsic tier multiplier times a Zipf
 * rank weight with the run's skew (training and evaluation inputs use
 * different skews, modeling input-set drift).
 */
std::vector<double>
handlerWeights(const SyntheticWorkload &workload, double skew)
{
    const std::size_t n = std::max<std::size_t>(
        1, workload.handlers.size());
    std::vector<double> w(n, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
        const double tier = i < workload.handlerTierWeight.size()
                                ? workload.handlerTierWeight[i]
                                : 1.0;
        w[i] = tier / std::pow(static_cast<double>(i + 1), skew);
    }
    return w;
}

} // namespace

Executor::Executor(const SyntheticWorkload &workload,
                   const ElfImage &image, const ExecOptions &options) :
    wl_(workload), elf_(image), rng_(options.seed),
    handlerSampler_(handlerWeights(workload,
                                   options.handlerZipfSkew)),
    helperZipf_(std::max<std::size_t>(1, workload.helpers.size()),
                workload.params.helperZipfSkew),
    regionCursor_(workload.params.regions.size(), 0)
{
    panic_if(elf_.blockAddr.size() != wl_.program.numBlocks(),
             "layout does not match program");

    // Compile the program + layout into the flat tables.
    const Program &prog = wl_.program;
    blocks_.resize(prog.numBlocks());
    for (std::size_t id = 0; id < prog.numBlocks(); ++id) {
        const BasicBlock &bb = prog.blocks()[id];
        BlockInfo &info = blocks_[id];
        info.addr = elf_.blockAddr[id];
        switch (bb.role) {
          case BBRole::LoopEnd:
            info.roleParam = bb.loopIterMean;
            break;
          case BBRole::CallSite:
            info.roleParam = bb.callProb;
            break;
          case BBRole::Plain:
          default:
            info.roleParam = bb.likelyProb;
            break;
        }
        panic_if(bb.instrs > 0xffff, "block too large for BlockInfo");
        panic_if(bb.data.size() > 0xff, "too many data sites");
        panic_if(bb.loopBodyLen > 0xffff,
                 "loop body too long for BlockInfo");
        info.instrs = static_cast<std::uint16_t>(bb.instrs);
        info.loopBodyLen =
            static_cast<std::uint16_t>(bb.loopBodyLen);
        info.dataBegin = static_cast<std::uint32_t>(dataSpecs_.size());
        info.dataCount = static_cast<std::uint8_t>(bb.data.size());
        info.role = bb.role;
        info.callee = bb.callee;
        dataSpecs_.insert(dataSpecs_.end(), bb.data.begin(),
                          bb.data.end());
    }
    funcs_.resize(prog.numFunctions());
    for (std::size_t id = 0; id < prog.numFunctions(); ++id) {
        const Function &fn = prog.functions()[id];
        FuncInfo &info = funcs_[id];
        info.bodyBegin = static_cast<std::uint32_t>(body_.size());
        info.bodyLen = static_cast<std::uint32_t>(fn.body.size());
        info.isDispatcher = fn.kind == FuncKind::Dispatcher;
        body_.insert(body_.end(), fn.body.begin(), fn.body.end());
        rareAfter_.insert(rareAfter_.end(), fn.rareAfter.begin(),
                          fn.rareAfter.end());
    }
    bodyAddrs_.reserve(body_.size());
    for (const std::uint32_t id : body_)
        bodyAddrs_.push_back(blocks_[id].addr);
    regions_.resize(wl_.params.regions.size());
    for (std::size_t r = 0; r < regions_.size(); ++r) {
        const DataRegionSpec &spec = wl_.params.regions[r];
        regions_[r].sizeBytes = spec.sizeBytes;
        regions_[r].localityBytes = std::min<std::uint64_t>(
            spec.localityBytes, spec.sizeBytes);
        regions_[r].localityFraction = spec.localityFraction;
        regions_[r].dependentFraction = spec.dependentFraction;
        regions_[r].base = wl_.regionBase[r];
    }

    pushFrame(wl_.dispatcher);
}

std::uint32_t
Executor::pickCallee(CalleeClass cls)
{
    switch (cls) {
      case CalleeClass::Handler:
        return wl_.handlers[handlerSampler_.sample(rng_)];
      case CalleeClass::Helper:
        return wl_.helpers[helperZipf_.sample(rng_)];
      case CalleeClass::Cold:
        return wl_.coldFuncs[rng_.below(wl_.coldFuncs.size())];
      case CalleeClass::External:
        return wl_.externals[rng_.below(wl_.externals.size())];
    }
    panic("unknown callee class");
}

void
Executor::emitData(const BlockInfo &bb, BBEvent &ev)
{
    const DataAccessSpec *specs = &dataSpecs_[bb.dataBegin];
    for (std::uint16_t s = 0; s < bb.dataCount; ++s) {
        const DataAccessSpec &spec = specs[s];
        // Mean accesses per execution, fractional part stochastic.
        std::uint32_t n = static_cast<std::uint32_t>(spec.count);
        if (rng_.chance(spec.count - static_cast<double>(n)))
            ++n;
        for (std::uint32_t i = 0;
             i < n && ev.numData < ev.data.size(); ++i) {
            const RegionInfo &region = regions_[spec.region];
            std::uint64_t &cursor = regionCursor_[spec.region];
            std::uint64_t offset = 0;
            switch (spec.pattern) {
              case DataPattern::Sequential:
              case DataPattern::Strided:
                // cursor < size, so one conditional subtract replaces
                // the modulo unless the stride itself exceeds size.
                cursor += spec.stride;
                if (cursor >= region.sizeBytes) {
                    cursor = cursor < 2 * region.sizeBytes
                                 ? cursor - region.sizeBytes
                                 : cursor % region.sizeBytes;
                }
                offset = cursor;
                break;
              case DataPattern::Random:
                if (rng_.chance(region.localityFraction)) {
                    // Hot working-set window at the region start.
                    offset = rng_.below(region.localityBytes);
                } else {
                    offset = rng_.below(region.sizeBytes);
                }
                break;
            }
            DataAccessEvent &d = ev.data[ev.numData++];
            d.vaddr = region.base + offset;
            d.pc = ev.vaddr + 8;
            d.isStore = rng_.chance(spec.storeFraction);
            d.dependent = !d.isStore &&
                          rng_.chance(region.dependentFraction);
        }
    }
}

void
Executor::setBranch(BBEvent &ev, Addr target, bool conditional,
                    bool is_call, bool is_return, bool is_indirect)
{
    const Addr fallthrough = ev.vaddr + ev.bytes;
    const bool taken = target != fallthrough;
    if (!conditional && !is_call && !is_return && !taken) {
        // Pure fall-through: no branch instruction at all.
        ev.hasBranch = false;
        return;
    }
    ev.hasBranch = true;
    ev.branch = BranchInfo{};
    ev.branch.pc = ev.vaddr + ev.bytes - 4;
    ev.branch.target = target;
    ev.branch.taken = taken;
    ev.branch.conditional = conditional;
    ev.branch.isCall = is_call;
    ev.branch.isReturn = is_return;
    ev.branch.isIndirect = is_indirect;
}

void
Executor::produce(BBEvent *ring, std::uint32_t mask,
                  std::uint32_t pos, std::uint32_t count)
{
    // next() is a direct (devirtualized) call here, so the per-event
    // work is one non-virtual call into the flat-table walk; the ring
    // indexing is a masked add, no bounds checks.
    for (std::uint32_t k = 0; k < count; ++k)
        next(ring[(pos + k) & mask]);
}

void
Executor::next(BBEvent &ev)
{
    Frame &fr = stack_[depth_ - 1];
    const FuncInfo &fn = funcs_[fr.func];

    const bool is_rare = fr.pendingRare >= 0;
    const std::uint32_t bb_id =
        is_rare ? static_cast<std::uint32_t>(fr.pendingRare)
                : body_[fn.bodyBegin + fr.pos];
    const BlockInfo &bb = blocks_[bb_id];

    ev.bb = bb_id;
    ev.vaddr = bb.addr;
    ev.instrs = bb.instrs;
    ev.bytes = static_cast<std::uint32_t>(bb.instrs) * 4;
    ev.numData = 0;
    ev.hasBranch = false;
    ev.fdipMispredict = false;
    if (bb.dataCount > 0)
        emitData(bb, ev);

    if (is_rare) {
        // Rare block rejoins the body at the next position.
        fr.pendingRare = -1;
        ++fr.pos;
        setBranch(ev, bodyAddr(fn, fr.pos), false, false, false,
                  false);
        return;
    }

    const bool last = fr.pos + 1 == fn.bodyLen;

    if (last) {
        if (fn.isDispatcher) {
            // Dispatcher loops forever.
            fr.pos = 0;
            setBranch(ev, bodyAddr(fn, 0), false, false, false, false);
            return;
        }
        // Return to the caller's resume block.
        panic_if(depth_ < 2, "return from the bottom frame");
        --depth_;
        Frame &caller = stack_[depth_ - 1];
        const Addr resume = bodyAddr(funcs_[caller.func], caller.pos);
        setBranch(ev, resume, false, false, true, false);
        return;
    }

    switch (bb.role) {
      case BBRole::LoopEnd: {
        // Find (or start) the loop anchored at this position; loops
        // are keyed by position so overlapping/nested loops each keep
        // their own trip count.
        ActiveLoop *loop = nullptr;
        for (ActiveLoop &l : fr.loops) {
            if (l.pos == fr.pos) {
                loop = &l;
                break;
            }
        }
        if (!loop) {
            const double jitter = 0.5 + rng_.uniform();
            const auto iters = std::max<std::uint64_t>(
                1, static_cast<std::uint64_t>(bb.roleParam * jitter));
            fr.loops.push_back(ActiveLoop{
                fr.pos, static_cast<std::uint32_t>(iters - 1)});
            loop = &fr.loops.back();
        }
        if (loop->remaining > 0) {
            --loop->remaining;
            const std::uint32_t back = fr.pos - bb.loopBodyLen;
            fr.pos = back;
            setBranch(ev, bodyAddr(fn, back), true, false, false,
                      false);
        } else {
            // Loop exit: retire this loop's state.
            for (std::size_t i = 0; i < fr.loops.size(); ++i) {
                if (fr.loops[i].pos == fr.pos) {
                    fr.loops.erase(
                        fr.loops.begin() +
                        static_cast<std::ptrdiff_t>(i));
                    break;
                }
            }
            ++fr.pos;
            setBranch(ev, bodyAddr(fn, fr.pos), true, false, false,
                      false);
        }
        return;
      }
      case BBRole::CallSite: {
        const bool can_call =
            depth_ < wl_.params.maxCallDepth &&
            !(bb.callee == CalleeClass::Helper &&
              wl_.helpers.empty()) &&
            !(bb.callee == CalleeClass::Cold &&
              wl_.coldFuncs.empty()) &&
            !(bb.callee == CalleeClass::External &&
              wl_.externals.empty());
        if (can_call && rng_.chance(bb.roleParam)) {
            const std::uint32_t callee = pickCallee(bb.callee);
            ++fr.pos; // Resume point after the call.
            const bool indirect = bb.callee == CalleeClass::Handler ||
                                  bb.callee == CalleeClass::External;
            setBranch(ev, elf_.funcEntry[callee], false, true, false,
                      indirect);
            pushFrame(callee);
        } else {
            // Guard skipped the call.
            ++fr.pos;
            setBranch(ev, bodyAddr(fn, fr.pos), true, false, false,
                      false);
        }
        return;
      }
      case BBRole::Plain:
      default: {
        const std::int32_t rare = rareAfter_[fn.bodyBegin + fr.pos];
        const bool likely = rng_.chance(bb.roleParam);
        if (!likely && rare >= 0) {
            // Detour through the unlikely path, then rejoin.
            fr.pendingRare = rare;
            setBranch(ev,
                      blocks_[static_cast<std::uint32_t>(rare)].addr,
                      true, false, false, false);
        } else {
            ++fr.pos;
            setBranch(ev, bodyAddr(fn, fr.pos),
                      bb.roleParam < 1.0 && rare >= 0, false, false,
                      false);
        }
        return;
      }
    }
}

} // namespace trrip
