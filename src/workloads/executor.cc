#include "workloads/executor.hh"

#include <algorithm>

#include "util/logging.hh"

namespace trrip {

namespace {

/**
 * Handler selection weights: intrinsic tier multiplier times a Zipf
 * rank weight with the run's skew (training and evaluation inputs use
 * different skews, modeling input-set drift).
 */
std::vector<double>
handlerWeights(const SyntheticWorkload &workload, double skew)
{
    const std::size_t n = std::max<std::size_t>(
        1, workload.handlers.size());
    std::vector<double> w(n, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
        const double tier = i < workload.handlerTierWeight.size()
                                ? workload.handlerTierWeight[i]
                                : 1.0;
        w[i] = tier / std::pow(static_cast<double>(i + 1), skew);
    }
    return w;
}

} // namespace

Executor::Executor(const SyntheticWorkload &workload,
                   const ElfImage &image, const ExecOptions &options) :
    wl_(workload), elf_(image), rng_(options.seed),
    handlerSampler_(handlerWeights(workload,
                                   options.handlerZipfSkew)),
    helperZipf_(std::max<std::size_t>(1, workload.helpers.size()),
                workload.params.helperZipfSkew),
    regionCursor_(workload.params.regions.size(), 0)
{
    panic_if(elf_.blockAddr.size() != wl_.program.numBlocks(),
             "layout does not match program");
    stack_.push_back(Frame{wl_.dispatcher, 0, -1, {}});
}

std::uint32_t
Executor::pickCallee(CalleeClass cls)
{
    switch (cls) {
      case CalleeClass::Handler:
        return wl_.handlers[handlerSampler_.sample(rng_)];
      case CalleeClass::Helper:
        return wl_.helpers[helperZipf_.sample(rng_)];
      case CalleeClass::Cold:
        return wl_.coldFuncs[rng_.below(wl_.coldFuncs.size())];
      case CalleeClass::External:
        return wl_.externals[rng_.below(wl_.externals.size())];
    }
    panic("unknown callee class");
}

void
Executor::emitData(const BasicBlock &bb, BBEvent &ev)
{
    for (const DataAccessSpec &spec : bb.data) {
        // Mean accesses per execution, fractional part stochastic.
        std::uint32_t n = static_cast<std::uint32_t>(spec.count);
        if (rng_.chance(spec.count - static_cast<double>(n)))
            ++n;
        for (std::uint32_t i = 0;
             i < n && ev.numData < ev.data.size(); ++i) {
            const DataRegionSpec &region =
                wl_.params.regions[spec.region];
            std::uint64_t &cursor = regionCursor_[spec.region];
            std::uint64_t offset = 0;
            switch (spec.pattern) {
              case DataPattern::Sequential:
              case DataPattern::Strided:
                cursor = (cursor + spec.stride) % region.sizeBytes;
                offset = cursor;
                break;
              case DataPattern::Random:
                if (rng_.chance(region.localityFraction)) {
                    // Hot working-set window at the region start.
                    offset = rng_.below(std::min<std::uint64_t>(
                        region.localityBytes, region.sizeBytes));
                } else {
                    offset = rng_.below(region.sizeBytes);
                }
                break;
            }
            DataAccessEvent &d = ev.data[ev.numData++];
            d.vaddr = wl_.regionBase[spec.region] + offset;
            d.pc = ev.vaddr + 8;
            d.isStore = rng_.chance(spec.storeFraction);
            d.dependent = !d.isStore &&
                          rng_.chance(region.dependentFraction);
        }
    }
}

void
Executor::setBranch(BBEvent &ev, Addr target, bool conditional,
                    bool is_call, bool is_return, bool is_indirect)
{
    const Addr fallthrough = ev.vaddr + ev.bytes;
    const bool taken = target != fallthrough;
    if (!conditional && !is_call && !is_return && !taken) {
        // Pure fall-through: no branch instruction at all.
        ev.hasBranch = false;
        return;
    }
    ev.hasBranch = true;
    ev.branch = BranchInfo{};
    ev.branch.pc = ev.vaddr + ev.bytes - 4;
    ev.branch.target = target;
    ev.branch.taken = taken;
    ev.branch.conditional = conditional;
    ev.branch.isCall = is_call;
    ev.branch.isReturn = is_return;
    ev.branch.isIndirect = is_indirect;
}

void
Executor::next(BBEvent &ev)
{
    Frame &fr = stack_.back();
    const Function &fn = wl_.program.function(fr.func);

    const bool is_rare = fr.pendingRare >= 0;
    const std::uint32_t bb_id =
        is_rare ? static_cast<std::uint32_t>(fr.pendingRare)
                : fn.body[fr.pos];
    const BasicBlock &bb = wl_.program.block(bb_id);

    ev.bb = bb_id;
    ev.vaddr = elf_.blockAddr[bb_id];
    ev.instrs = bb.instrs;
    ev.bytes = bb.bytes();
    ev.numData = 0;
    ev.hasBranch = false;
    ev.fdipMispredict = false;
    emitData(bb, ev);

    if (is_rare) {
        // Rare block rejoins the body at the next position.
        fr.pendingRare = -1;
        ++fr.pos;
        setBranch(ev, elf_.blockAddr[fn.body[fr.pos]], false, false,
                  false, false);
        return;
    }

    const bool last = fr.pos + 1 == fn.body.size();
    const bool is_dispatcher = fn.kind == FuncKind::Dispatcher;

    if (last) {
        if (is_dispatcher) {
            // Dispatcher loops forever.
            fr.pos = 0;
            setBranch(ev, elf_.blockAddr[fn.body[0]], false, false,
                      false, false);
            return;
        }
        // Return to the caller's resume block.
        panic_if(stack_.size() < 2, "return from the bottom frame");
        stack_.pop_back();
        Frame &caller = stack_.back();
        const Function &cfn = wl_.program.function(caller.func);
        const Addr resume = elf_.blockAddr[cfn.body[caller.pos]];
        setBranch(ev, resume, false, false, true, false);
        return;
    }

    switch (bb.role) {
      case BBRole::LoopEnd: {
        // Find (or start) the loop anchored at this position; loops
        // are keyed by position so overlapping/nested loops each keep
        // their own trip count.
        ActiveLoop *loop = nullptr;
        for (ActiveLoop &l : fr.loops) {
            if (l.pos == fr.pos) {
                loop = &l;
                break;
            }
        }
        if (!loop) {
            const double jitter = 0.5 + rng_.uniform();
            const auto iters = std::max<std::uint64_t>(
                1, static_cast<std::uint64_t>(bb.loopIterMean * jitter));
            fr.loops.push_back(ActiveLoop{
                fr.pos, static_cast<std::uint32_t>(iters - 1)});
            loop = &fr.loops.back();
        }
        if (loop->remaining > 0) {
            --loop->remaining;
            const std::uint32_t back = fr.pos - bb.loopBodyLen;
            fr.pos = back;
            setBranch(ev, elf_.blockAddr[fn.body[back]], true, false,
                      false, false);
        } else {
            // Loop exit: retire this loop's state.
            for (std::size_t i = 0; i < fr.loops.size(); ++i) {
                if (fr.loops[i].pos == fr.pos) {
                    fr.loops.erase(
                        fr.loops.begin() +
                        static_cast<std::ptrdiff_t>(i));
                    break;
                }
            }
            ++fr.pos;
            setBranch(ev, elf_.blockAddr[fn.body[fr.pos]], true, false,
                      false, false);
        }
        return;
      }
      case BBRole::CallSite: {
        const bool can_call =
            stack_.size() < wl_.params.maxCallDepth &&
            !(bb.callee == CalleeClass::Helper &&
              wl_.helpers.empty()) &&
            !(bb.callee == CalleeClass::Cold &&
              wl_.coldFuncs.empty()) &&
            !(bb.callee == CalleeClass::External &&
              wl_.externals.empty());
        if (can_call && rng_.chance(bb.callProb)) {
            const std::uint32_t callee = pickCallee(bb.callee);
            ++fr.pos; // Resume point after the call.
            const bool indirect = bb.callee == CalleeClass::Handler ||
                                  bb.callee == CalleeClass::External;
            setBranch(ev, elf_.funcEntry[callee], false, true, false,
                      indirect);
            stack_.push_back(Frame{callee, 0, -1, {}});
        } else {
            // Guard skipped the call.
            ++fr.pos;
            setBranch(ev, elf_.blockAddr[fn.body[fr.pos]], true, false,
                      false, false);
        }
        return;
      }
      case BBRole::Plain:
      default: {
        const std::int32_t rare = fn.rareAfter[fr.pos];
        const bool likely = rng_.chance(bb.likelyProb);
        if (!likely && rare >= 0) {
            // Detour through the unlikely path, then rejoin.
            fr.pendingRare = rare;
            setBranch(ev,
                      elf_.blockAddr[static_cast<std::uint32_t>(rare)],
                      true, false, false, false);
        } else {
            ++fr.pos;
            setBranch(ev, elf_.blockAddr[fn.body[fr.pos]],
                      bb.likelyProb < 1.0 && rare >= 0, false, false,
                      false);
        }
        return;
      }
    }
}

} // namespace trrip
