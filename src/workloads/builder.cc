#include "workloads/builder.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/rng.hh"

namespace trrip {

namespace {

/** Jittered block size around the configured mean. */
std::uint32_t
blockInstrs(Rng &rng, std::uint32_t mean)
{
    const std::uint32_t lo = std::max<std::uint32_t>(4, mean / 2);
    const std::uint32_t hi = mean + mean / 2;
    return static_cast<std::uint32_t>(rng.range(lo, hi));
}

/** Attach data access sites to a block. */
void
attachData(Rng &rng, const WorkloadParams &p, BasicBlock &bb,
           double intensity)
{
    if (p.regions.empty())
        return;
    double total_weight = 0.0;
    for (const auto &r : p.regions)
        total_weight += r.weight;
    // One or two access sites, scaled by the workload intensity.
    const int sites = rng.chance(0.3) ? 2 : 1;
    for (int s = 0; s < sites; ++s) {
        double pick = rng.uniform() * total_weight;
        std::uint16_t region = 0;
        for (std::size_t r = 0; r < p.regions.size(); ++r) {
            pick -= p.regions[r].weight;
            if (pick <= 0.0) {
                region = static_cast<std::uint16_t>(r);
                break;
            }
        }
        DataAccessSpec spec;
        spec.region = region;
        spec.pattern = p.regions[region].pattern;
        spec.stride = p.regions[region].stride;
        spec.count = static_cast<float>(
            p.dataAccessesPerBB * intensity / sites);
        spec.storeFraction = p.regions[region].storeFraction;
        bb.data.push_back(spec);
    }
}

/**
 * Emit one function body with the standard role mix: some loop ends,
 * some call sites, the rest plain blocks (about rareBlockFraction of
 * which get a rare successor).  The last block is kept plain with no
 * rare successor: it is the return.
 */
void
buildBody(Program &prog, Rng &rng, const WorkloadParams &p,
          std::uint32_t func, std::uint32_t body_bbs,
          double data_intensity, bool allow_calls,
          CalleeClass helper_class)
{
    for (std::uint32_t i = 0; i < body_bbs; ++i) {
        BasicBlock bb;
        bb.instrs = blockInstrs(rng, p.meanBBInstrs);
        const bool last = (i + 1 == body_bbs);

        if (!last && i >= p.loopBodyLen &&
            rng.chance(p.loopBBFraction)) {
            bb.role = BBRole::LoopEnd;
            bb.loopBodyLen = p.loopBodyLen;
            bb.loopIterMean = p.loopIterMean;
        } else if (!last && allow_calls &&
                   rng.chance(p.helperCallBBFraction)) {
            bb.role = BBRole::CallSite;
            bb.callee = helper_class;
            bb.callProb = p.helperCallProb;
        } else {
            bb.role = BBRole::Plain;
            bb.likelyProb = rng.chance(p.branchNoise)
                                ? 0.5
                                : 1.0 - p.unlikelyProb;
        }
        attachData(rng, p, bb, data_intensity);
        const std::uint32_t pos = static_cast<std::uint32_t>(
            prog.function(func).body.size());
        prog.addBodyBlock(func, bb);

        // Rare (unlikely-path) successor for plain non-final blocks.
        if (!last && bb.role == BBRole::Plain &&
            rng.chance(p.rareBlockFraction)) {
            BasicBlock rare;
            rare.instrs = std::max<std::uint32_t>(
                4, static_cast<std::uint32_t>(
                       bb.instrs * p.rareBlockSizeRatio));
            rare.role = BBRole::Plain;
            rare.likelyProb = 1.0; // Straight back to the body.
            prog.addRareBlock(func, pos, rare);
        }
    }
}

/** Insert a guarded cold/external call site into a handler body. */
void
addGuardedCall(Program &prog, Rng &rng, std::uint32_t func,
               CalleeClass callee, double prob,
               std::uint32_t mean_instrs)
{
    BasicBlock bb;
    bb.instrs = blockInstrs(rng, mean_instrs);
    bb.role = BBRole::CallSite;
    bb.callee = callee;
    bb.callProb = prob;
    prog.addBodyBlock(func, bb);
}

} // namespace

SyntheticWorkload
buildWorkload(const WorkloadParams &params)
{
    fatal_if(params.numHandlers == 0, "workload needs handlers");
    SyntheticWorkload wl;
    wl.params = params;
    Rng rng(params.seed * 0x5851f42d4c957f2dull + 0x14057b7ef767814full);
    Program &prog = wl.program;

    // --- Dispatcher: prologue, indirect call to a handler, back-edge.
    wl.dispatcher = prog.addFunction("dispatch", FuncKind::Dispatcher);
    {
        BasicBlock prologue;
        prologue.instrs = blockInstrs(rng, params.meanBBInstrs);
        prologue.role = BBRole::Plain;
        prologue.likelyProb = 1.0;
        attachData(rng, params, prologue, 0.5);
        prog.addBodyBlock(wl.dispatcher, prologue);

        BasicBlock call;
        call.instrs = 6;
        call.role = BBRole::CallSite;
        call.callee = CalleeClass::Handler;
        call.callProb = 1.0;
        prog.addBodyBlock(wl.dispatcher, call);

        BasicBlock backedge;
        backedge.instrs = 4;
        backedge.role = BBRole::Plain;
        backedge.likelyProb = 1.0;
        prog.addBodyBlock(wl.dispatcher, backedge);
    }

    // --- Handlers, helpers and cold functions in interleaved "source
    // order" so the non-PGO layout scatters hot code across the image.
    const std::uint32_t helpers_per_handler = std::max<std::uint32_t>(
        1, params.numHelpers / std::max<std::uint32_t>(
               1, params.numHandlers));
    std::uint32_t cold_emitted = 0;
    std::uint32_t helpers_emitted = 0;
    for (std::uint32_t h = 0; h < params.numHandlers; ++h) {
        const std::uint32_t f = prog.addFunction(
            "handler_" + std::to_string(h), FuncKind::Handler);
        wl.handlers.push_back(f);
        buildBody(prog, rng, params, f, params.handlerBodyBBs, 1.0,
                  true, CalleeClass::Helper);
        // Guarded rare calls near the end of the handler.
        addGuardedCall(prog, rng, f, CalleeClass::Cold,
                       params.coldCallProb, params.meanBBInstrs);
        addGuardedCall(prog, rng, f, CalleeClass::External,
                       params.externalCallProb, params.meanBBInstrs);
        // Return block.
        BasicBlock ret;
        ret.instrs = 4;
        prog.addBodyBlock(f, ret);

        for (std::uint32_t k = 0; k < helpers_per_handler &&
                                  helpers_emitted < params.numHelpers;
             ++k, ++helpers_emitted) {
            const std::uint32_t g = prog.addFunction(
                "helper_" + std::to_string(helpers_emitted),
                FuncKind::Helper);
            wl.helpers.push_back(g);
            buildBody(prog, rng, params, g, params.helperBodyBBs, 0.7,
                      true, CalleeClass::Helper);
            BasicBlock ret2;
            ret2.instrs = 4;
            prog.addBodyBlock(g, ret2);
        }
        // Sprinkle cold functions through the source.
        if (h % 2 == 1 && cold_emitted < params.numColdFuncs) {
            const std::uint32_t c = prog.addFunction(
                "cold_" + std::to_string(cold_emitted++),
                FuncKind::Cold);
            wl.coldFuncs.push_back(c);
            buildBody(prog, rng, params, c, params.coldBodyBBs, 0.3,
                      false, CalleeClass::Helper);
            BasicBlock ret3;
            ret3.instrs = 4;
            prog.addBodyBlock(c, ret3);
        }
    }
    while (cold_emitted < params.numColdFuncs) {
        const std::uint32_t c = prog.addFunction(
            "cold_" + std::to_string(cold_emitted++), FuncKind::Cold);
        wl.coldFuncs.push_back(c);
        buildBody(prog, rng, params, c, params.coldBodyBBs, 0.3, false,
                  CalleeClass::Helper);
        BasicBlock ret3;
        ret3.instrs = 4;
        prog.addBodyBlock(c, ret3);
    }
    while (helpers_emitted < params.numHelpers) {
        const std::uint32_t g = prog.addFunction(
            "helper_" + std::to_string(helpers_emitted++),
            FuncKind::Helper);
        wl.helpers.push_back(g);
        buildBody(prog, rng, params, g, params.helperBodyBBs, 0.7, true,
                  CalleeClass::Helper);
        BasicBlock ret2;
        ret2.instrs = 4;
        prog.addBodyBlock(g, ret2);
    }

    // --- External (PLT / shared-library) functions.
    for (std::uint32_t e = 0; e < params.numExternalFuncs; ++e) {
        const std::uint32_t f = prog.addFunction(
            "ext_" + std::to_string(e), FuncKind::External);
        wl.externals.push_back(f);
        buildBody(prog, rng, params, f, params.externalBodyBBs, 0.6,
                  false, CalleeClass::External);
        BasicBlock ret;
        ret.instrs = 4;
        prog.addBodyBlock(f, ret);
    }

    // --- Handler frequency tiers: a random core subset is boosted,
    // a random rare subset damped.  Randomized assignment keeps
    // source order uncorrelated with hotness, so PGO's reordering is
    // meaningful.
    wl.handlerTierWeight.assign(params.numHandlers, 1.0);
    {
        std::vector<std::uint32_t> order(params.numHandlers);
        for (std::uint32_t i = 0; i < params.numHandlers; ++i)
            order[i] = i;
        for (std::uint32_t i = params.numHandlers; i > 1; --i) {
            const auto j = static_cast<std::uint32_t>(rng.below(i));
            std::swap(order[i - 1], order[j]);
        }
        const auto n_core = static_cast<std::uint32_t>(
            params.coreHandlerFraction * params.numHandlers);
        const auto n_rare = static_cast<std::uint32_t>(
            params.rareHandlerFraction * params.numHandlers);
        for (std::uint32_t i = 0; i < n_core; ++i)
            wl.handlerTierWeight[order[i]] = params.coreHandlerBoost;
        for (std::uint32_t i = 0; i < n_rare &&
                                  n_core + i < params.numHandlers; ++i)
            wl.handlerTierWeight[order[params.numHandlers - 1 - i]] =
                params.rareHandlerDamp;
    }

    // --- Data region base addresses, page aligned, disjoint.
    Addr base = params.dataBase;
    for (const auto &r : params.regions) {
        wl.regionBase.push_back(base);
        base += (r.sizeBytes + 0xfffull) & ~0xfffull;
        base += 4096; // Guard page.
    }
    return wl;
}

} // namespace trrip
