#include "workloads/proxies.hh"

#include "util/logging.hh"

namespace trrip {

namespace {

/** Shared defaults; per-benchmark code below adjusts. */
WorkloadParams
base(const std::string &name, std::uint64_t seed)
{
    WorkloadParams p;
    p.name = name;
    p.seed = seed;
    p.trainSeed = seed * 7919 + 13;
    return p;
}

DataRegionSpec
region(const char *name, std::uint64_t size, DataPattern pattern,
       double weight, float stores, double locality,
       std::uint64_t window, double dependent = 0.0)
{
    DataRegionSpec r;
    r.name = name;
    r.sizeBytes = size;
    r.pattern = pattern;
    r.weight = weight;
    r.storeFraction = stores;
    r.localityFraction = locality;
    r.localityBytes = window;
    r.dependentFraction = dependent;
    return r;
}

constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * 1024;

} // namespace

std::vector<std::string>
proxyNames()
{
    return {"abseil", "bullet", "clamscan", "clang", "deepsjeng",
            "gcc",    "omnetpp", "python",  "rapidjson", "sqlite"};
}

std::vector<std::string>
systemComponentNames()
{
    return {"interp", "ui", "graphics", "render", "js_runtime"};
}

WorkloadParams
proxyParams(const std::string &name)
{
    // ---------------- Proxy benchmarks (paper Table 2) ----------------
    if (name == "abseil") {
        // C++ utility library test: moderate hot code, data-dominated
        // (btree benchmark), high TRRIP headroom.
        WorkloadParams p = base(name, 101);
        p.numHandlers = 110;
        p.numHelpers = 90;
        p.helperCallProb = 0.45;
        p.numColdFuncs = 260;
        p.numExternalFuncs = 40;
        p.zipfSkew = 0.5;
        p.trainZipfSkew = 0.45;
        p.externalCallProb = 0.02;
        p.dataAccessesPerBB = 0.9;
        p.regions = {region("btree", 8 * kMiB, DataPattern::Random,
                            2.0, 0.25f, 0.80, 16 * kKiB, 0.7),
                     region("arena", 512 * kKiB, DataPattern::Random,
                            1.0, 0.2f, 0.97, 16 * kKiB, 0.3),
                     region("logbuf", 2 * kMiB,
                            DataPattern::Sequential, 0.8, 0.3f, 1.0, 0)};
        p.extraColdTextBytes = 3800 * kKiB;
        p.extraBinaryBytes = 1400 * kKiB;
        return p;
    }
    if (name == "bullet") {
        // Physics/rendering proxy: tiny hot loop set, much time in
        // external math code; lowest instruction MPKI of the suite.
        WorkloadParams p = base(name, 102);
        p.numHandlers = 90;
        p.numHelpers = 30;
        p.numColdFuncs = 80;
        p.numExternalFuncs = 30;
        p.zipfSkew = 0.7;
        p.trainZipfSkew = 0.65;
        p.externalCallProb = 0.14;
        p.loopIterMean = 7.0;
        p.dataAccessesPerBB = 0.3;
        p.regions = {region("bodies", 1 * kMiB, DataPattern::Random,
                            1.5, 0.3f, 0.92, 16 * kKiB, 0.3),
                     region("contacts", 256 * kKiB,
                            DataPattern::Random, 1.0, 0.2f, 0.98,
                            16 * kKiB, 0.5)};
        p.extraColdTextBytes = 500 * kKiB;
        p.extraBinaryBytes = 240 * kKiB;
        return p;
    }
    if (name == "clamscan") {
        // Malware scanner: streaming scan buffers, signature matching
        // partially in external code.
        WorkloadParams p = base(name, 103);
        p.numHandlers = 60;
        p.numHelpers = 30;
        p.numColdFuncs = 120;
        p.numExternalFuncs = 40;
        p.zipfSkew = 0.8;
        p.trainZipfSkew = 0.75;
        p.externalCallProb = 0.11;
        p.dataAccessesPerBB = 0.3;
        p.regions = {region("scanbuf", 4 * kMiB,
                            DataPattern::Sequential, 1.6, 0.05f, 1.0,
                            0),
                     region("sigs", 1 * kMiB, DataPattern::Random,
                            1.0, 0.2f, 0.97, 16 * kKiB, 0.4)};
        p.extraColdTextBytes = 280 * kKiB;
        p.extraBinaryBytes = 180 * kKiB;
        return p;
    }
    if (name == "clang") {
        // Compiler: the largest code footprint of the suite by far;
        // instruction MPKI dominates everything else.
        WorkloadParams p = base(name, 104);
        p.numHandlers = 5000;
        p.numHelpers = 3000;
        p.handlerBodyBBs = 9;
        p.loopBBFraction = 0.06;
        p.loopIterMean = 3.0;
        p.numColdFuncs = 900;
        p.numExternalFuncs = 64;
        p.zipfSkew = 0.30;
        p.trainZipfSkew = 0.27;
        p.externalCallProb = 0.03;
        p.dataAccessesPerBB = 0.95;
        p.regions = {region("ast", 16 * kMiB, DataPattern::Random,
                            2.0, 0.3f, 0.86, 16 * kKiB, 0.7),
                     region("tokens", 4 * kMiB,
                            DataPattern::Sequential, 1.6, 0.05f, 1.0,
                            0)};
        p.extraColdTextBytes = 150 * kMiB;
        p.extraBinaryBytes = 12 * kMiB;
        return p;
    }
    if (name == "deepsjeng") {
        // Chess search: small loop-heavy hot core that almost fits the
        // L2; TRRIP's protection nearly eliminates its code misses.
        WorkloadParams p = base(name, 105);
        p.numHandlers = 420;
        p.numHelpers = 70;
        p.numColdFuncs = 160;
        p.numExternalFuncs = 8;
        p.zipfSkew = 0.45;
        p.trainZipfSkew = 0.42;
        p.externalCallProb = 0.004;
        p.coldCallProb = 0.015;
        p.loopIterMean = 8.0;
        p.loopBBFraction = 0.26;
        p.dataAccessesPerBB = 0.35;
        p.regions = {region("board", 768 * kKiB, DataPattern::Random,
                            1.5, 0.3f, 0.975, 16 * kKiB, 0.5),
                     region("tt", 256 * kKiB, DataPattern::Random,
                            1.0, 0.2f, 0.985, 16 * kKiB, 0.5),
                     region("movegen", 1 * kMiB,
                            DataPattern::Sequential, 0.35, 0.1f, 1.0, 0)};
        p.extraColdTextBytes = 16 * kKiB;
        p.extraBinaryBytes = 24 * kKiB;
        return p;
    }
    if (name == "gcc") {
        WorkloadParams p = base(name, 106);
        p.numHandlers = 760;
        p.numHelpers = 150;
        p.loopBBFraction = 0.08;
        p.numColdFuncs = 420;
        p.numExternalFuncs = 24;
        p.zipfSkew = 0.42;
        p.trainZipfSkew = 0.39;
        p.externalCallProb = 0.02;
        p.dataAccessesPerBB = 0.5;
        p.regions = {region("ir", 4 * kMiB, DataPattern::Random, 2.0,
                            0.3f, 0.975, 16 * kKiB, 0.6),
                     region("symtab", 1 * kMiB, DataPattern::Random,
                            1.0, 0.2f, 0.98, 16 * kKiB, 0.5),
                     region("rtlbuf", 2 * kMiB,
                            DataPattern::Sequential, 0.8, 0.2f, 1.0, 0)};
        p.extraColdTextBytes = 11 * kMiB;
        p.extraBinaryBytes = 2 * kMiB;
        return p;
    }
    if (name == "omnetpp") {
        // Discrete event simulator: large warm callee population, part
        // of the costly misses land in warm code (paper section 4.6).
        WorkloadParams p = base(name, 107);
        p.numHandlers = 240;
        p.numHelpers = 520;
        p.loopBBFraction = 0.09;
        p.numColdFuncs = 240;
        p.numExternalFuncs = 70;
        p.zipfSkew = 0.45;
        p.trainZipfSkew = 0.42;
        p.externalCallProb = 0.08;
        p.helperCallProb = 0.45;
        p.dataAccessesPerBB = 0.75;
        p.regions = {region("events", 6 * kMiB, DataPattern::Random,
                            2.0, 0.3f, 0.90, 16 * kKiB, 0.6),
                     region("queues", 512 * kKiB, DataPattern::Random,
                            1.0, 0.2f, 0.97, 16 * kKiB, 0.5),
                     region("msgbuf", 2 * kMiB,
                            DataPattern::Sequential, 0.8, 0.3f, 1.0, 0)};
        p.extraColdTextBytes = 1800 * kKiB;
        p.extraBinaryBytes = 700 * kKiB;
        return p;
    }
    if (name == "python") {
        // Bytecode interpreter: the canonical dispatcher workload.
        WorkloadParams p = base(name, 108);
        p.numHandlers = 380;
        p.numHelpers = 360;
        p.loopBBFraction = 0.08;
        p.numColdFuncs = 380;
        p.numExternalFuncs = 40;
        p.zipfSkew = 0.45;
        p.trainZipfSkew = 0.42;
        p.externalCallProb = 0.03;
        p.dataAccessesPerBB = 0.8;
        p.regions = {region("objects", 4 * kMiB, DataPattern::Random,
                            2.0, 0.3f, 0.92, 16 * kKiB, 0.6),
                     region("bytecode", 2 * kMiB,
                            DataPattern::Sequential, 1.6, 0.02f, 1.0,
                            0)};
        p.extraColdTextBytes = 17 * kMiB;
        p.extraBinaryBytes = 3 * kMiB;
        return p;
    }
    if (name == "rapidjson") {
        // JSON parser: streaming input, small hot core, noticeable
        // external (allocator / stdlib) share.
        WorkloadParams p = base(name, 109);
        p.numHandlers = 40;
        p.numHelpers = 300;
        p.helperZipfSkew = 1.2;
        p.numColdFuncs = 100;
        p.numExternalFuncs = 60;
        p.zipfSkew = 0.75;
        p.trainZipfSkew = 0.70;
        p.externalCallProb = 0.10;
        p.helperCallProb = 0.08;
        p.dataAccessesPerBB = 0.75;
        p.regions = {region("json", 8 * kMiB, DataPattern::Sequential,
                            1.4, 0.05f, 1.0, 0),
                     region("dom", 2 * kMiB, DataPattern::Random, 1.0,
                            0.4f, 0.96, 16 * kKiB, 0.4)};
        p.extraColdTextBytes = 6500 * kKiB;
        p.extraBinaryBytes = 1200 * kKiB;
        return p;
    }
    if (name == "sqlite") {
        // Database engine: VDBE opcode dispatch, b-tree data.
        WorkloadParams p = base(name, 110);
        p.numHandlers = 1000;
        p.numHelpers = 170;
        p.loopBBFraction = 0.08;
        p.numColdFuncs = 320;
        p.numExternalFuncs = 32;
        p.zipfSkew = 0.45;
        p.trainZipfSkew = 0.42;
        p.externalCallProb = 0.03;
        p.dataAccessesPerBB = 0.55;
        p.regions = {region("btree", 3 * kMiB, DataPattern::Random,
                            2.0, 0.3f, 0.96, 16 * kKiB, 0.6),
                     region("pager", 1 * kMiB, DataPattern::Random,
                            1.0, 0.2f, 0.975, 16 * kKiB, 0.5),
                     region("walbuf", 2 * kMiB,
                            DataPattern::Sequential, 0.8, 0.4f, 1.0, 0)};
        p.extraColdTextBytes = 700 * kKiB;
        p.extraBinaryBytes = 300 * kKiB;
        return p;
    }

    // -------- System software components (paper Fig. 1) --------
    if (name == "interp") {
        WorkloadParams p = proxyParams("python");
        p.name = name;
        p.seed = 201;
        return p;
    }
    if (name == "ui") {
        WorkloadParams p = base(name, 202);
        p.numHandlers = 380;
        p.numHelpers = 700;
        p.numExternalFuncs = 90;
        p.zipfSkew = 0.74;
        p.externalCallProb = 0.08;
        p.dataAccessesPerBB = 0.8;
        p.regions = {region("widgets", 3 * kMiB, DataPattern::Random,
                            1.5, 0.3f, 0.92, 96 * kKiB)};
        p.extraColdTextBytes = 4 * kMiB;
        return p;
    }
    if (name == "graphics") {
        WorkloadParams p = base(name, 203);
        p.numHandlers = 320;
        p.numHelpers = 420;
        p.numExternalFuncs = 100;
        p.zipfSkew = 0.78;
        p.externalCallProb = 0.12;
        p.loopIterMean = 7.0;
        p.dataAccessesPerBB = 0.95;
        p.regions = {region("cmdbuf", 4 * kMiB,
                            DataPattern::Sequential, 1.5, 0.25f, 1.0,
                            0),
                     region("textures", 8 * kMiB, DataPattern::Strided,
                            1.0, 0.1f, 0.9, 64 * kKiB)};
        p.extraColdTextBytes = 3 * kMiB;
        return p;
    }
    if (name == "render") {
        WorkloadParams p = base(name, 204);
        p.numHandlers = 420;
        p.numHelpers = 560;
        p.numExternalFuncs = 90;
        p.zipfSkew = 0.76;
        p.externalCallProb = 0.09;
        p.dataAccessesPerBB = 0.9;
        p.regions = {region("display_list", 6 * kMiB,
                            DataPattern::Random, 1.5, 0.3f, 0.9,
                            96 * kKiB)};
        p.extraColdTextBytes = 5 * kMiB;
        return p;
    }
    if (name == "js_runtime") {
        WorkloadParams p = base(name, 205);
        p.numHandlers = 560;
        p.numHelpers = 800;
        p.numExternalFuncs = 60;
        p.zipfSkew = 0.8;
        p.externalCallProb = 0.04;
        p.dataAccessesPerBB = 0.9;
        p.regions = {region("heap", 6 * kMiB, DataPattern::Random,
                            2.0, 0.35f, 0.9, 96 * kKiB)};
        p.extraColdTextBytes = 9 * kMiB;
        return p;
    }

    fatal("unknown workload: ", name);
}

} // namespace trrip
