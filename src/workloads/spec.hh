/**
 * @file
 * Parameter spec for synthetic workloads.
 *
 * A workload models the control structure the paper attributes to
 * mobile system software (section 2): a dispatcher (interpreter loop /
 * UI event pump) selecting among many handlers with a Zipf
 * distribution, handlers calling warm helpers and rarely cold or
 * external (PLT / shared-library) code, with data streams interleaved.
 * This is exactly the structure that gives hot code its high L2 reuse
 * distance (paper section 2.4, Fig. 3).
 */

#ifndef TRRIP_WORKLOADS_SPEC_HH
#define TRRIP_WORKLOADS_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sw/program.hh"

namespace trrip {

/** One synthetic data region (heap array, table, buffer, ...). */
struct DataRegionSpec
{
    std::string name = "heap";
    std::uint64_t sizeBytes = 1 << 20;
    DataPattern pattern = DataPattern::Random;
    /** Element advance for Sequential/Strided accesses (bytes). */
    std::uint32_t stride = 16;
    double weight = 1.0;        //!< Selection weight across regions.
    float storeFraction = 0.2f;
    /**
     * Fraction of accesses that are serially dependent (pointer
     * chasing); their miss latency cannot be overlapped by the OOO
     * window.
     */
    double dependentFraction = 0.0;
    /**
     * Random-pattern temporal locality: fraction of accesses confined
     * to a hot window at the start of the region (the cacheable part
     * of the working set); the rest roam the whole region.
     */
    double localityFraction = 0.85;
    std::uint64_t localityBytes = 96 * 1024;
};

/** Full description of one synthetic benchmark. */
struct WorkloadParams
{
    std::string name = "custom";

    /** @name Determinism */
    /** @{ */
    std::uint64_t seed = 1;          //!< Evaluation input set.
    std::uint64_t trainSeed = 777;   //!< PGO training input set.
    /** @} */

    /** @name Dispatch dynamics */
    /** @{ */
    double zipfSkew = 0.8;           //!< Handler popularity skew.
    double trainZipfSkew = 0.75;     //!< Training-run skew (inputs
                                     //!< differ from evaluation).
    /**
     * Handler frequency tiers.  Real PGO count distributions span
     * orders of magnitude: a core set of functions dominates, a rare
     * set barely executes.  Tier multipliers stack on the Zipf weight
     * and give Eq. 1/2 a meaningful hot/warm/cold separation.
     */
    double coreHandlerFraction = 0.30;  //!< Fraction boosted.
    double coreHandlerBoost = 400.0;    //!< Weight multiplier.
    double rareHandlerFraction = 0.30;  //!< Fraction damped.
    double rareHandlerDamp = 0.02;      //!< Weight multiplier.
    /** @} */

    /** @name Static code structure */
    /** @{ */
    std::uint32_t numHandlers = 128;
    std::uint32_t handlerBodyBBs = 12;
    std::uint32_t numHelpers = 192;
    std::uint32_t helperBodyBBs = 8;
    std::uint32_t numColdFuncs = 300;
    std::uint32_t coldBodyBBs = 6;
    std::uint32_t numExternalFuncs = 48;
    std::uint32_t externalBodyBBs = 8;
    std::uint32_t meanBBInstrs = 12; //!< Jittered per block.
    /** Fraction of plain body blocks with an unlikely-path block. */
    double rareBlockFraction = 0.5;
    /** Rare block size relative to its body block. */
    double rareBlockSizeRatio = 1.2;
    /** Probability of taking the unlikely path. */
    double unlikelyProb = 0.06;
    /** Extra fraction of unpredictable (50/50) plain branches. */
    double branchNoise = 0.05;
    /** @} */

    /** @name Loops and calls */
    /** @{ */
    double loopBBFraction = 0.12;
    double loopIterMean = 4.0;
    std::uint32_t loopBodyLen = 2;
    double helperCallBBFraction = 0.28;
    double helperCallProb = 0.55;
    double helperZipfSkew = 1.1;
    double coldCallProb = 0.03;     //!< Fire rate of cold call sites.
    double externalCallProb = 0.05;  //!< Fire rate of external calls.
    std::uint32_t maxCallDepth = 8;
    /** @} */

    /** @name Data behavior */
    /** @{ */
    std::vector<DataRegionSpec> regions;
    double dataAccessesPerBB = 0.8;
    /** @} */

    /** @name Synthetic backend components (Top-Down realism) */
    /** @{ */
    double dependStallPerInstr = 0.28;
    double issueStallPerInstr = 0.10;
    double otherStallPerInstr = 0.05;
    /** @} */

    /** Non-text binary bytes (data, rodata, symtab) for Table 5. */
    std::uint64_t extraBinaryBytes = 512 * 1024;
    /** Never-executed cold text bloat appended by the layout. */
    std::uint64_t extraColdTextBytes = 0;

    Addr dataBase = 0x10000000ull;
};

} // namespace trrip

#endif // TRRIP_WORKLOADS_SPEC_HH
